//! Dense, row-major, f32 n-dimensional array.
//!
//! This is the storage type underneath the autodiff [`Graph`](crate::graph::Graph).
//! It deliberately supports only the operations the PriSTI computation graph
//! needs (element-wise arithmetic with NumPy-style broadcasting, 2-D and
//! batched 3-D matrix multiplication, permutation, concatenation, softmax),
//! implemented with cache-friendly loops rather than a general einsum engine.
//!
//! Storage is copy-on-write: the flat buffer lives behind an [`Arc`], so
//! `clone()` and [`NdArray::reshaped`] are O(rank) pointer bumps and only
//! [`NdArray::data_mut`] on a shared buffer pays for a copy. The matmul
//! kernels are register-tiled and batch-level parallel via `st-par`; every
//! output element is still a single-accumulator ascending-`p` sum, so results
//! are bitwise identical to the naive kernels and independent of thread count
//! (see DESIGN.md §9).

use crate::pool;
use crate::simd::{self, BinOp};
use st_rand::Rng;
use st_rand::{Distribution, Normal, Uniform};
use std::sync::Arc;

pub use crate::simd::{matmul_kernel, matmul_transa_kernel, matmul_transb_kernel};

/// A dense row-major tensor of `f32` values with copy-on-write storage.
///
/// Storage lives in a [`pool::Buffer`], which recycles large allocations
/// through a thread-local free list instead of handing them back to the OS
/// (per-op buffers here sit past glibc's mmap threshold, and the resulting
/// mmap/munmap + page-fault churn measured as ~40% of a model forward).
#[derive(Clone, Debug, PartialEq)]
pub struct NdArray {
    shape: Vec<usize>,
    data: Arc<pool::Buffer>,
}

impl NdArray {
    /// Create an array of zeros with the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let n = shape.iter().product();
        Self::from_parts(shape.to_vec(), pool::zeroed(n))
    }

    /// Create an array of ones with the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Create an array filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let n = shape.iter().product();
        let mut data = pool::dirty(n);
        data.fill(value);
        Self::from_parts(shape.to_vec(), data)
    }

    /// Create a rank-0-like scalar stored as shape `[1]`.
    pub fn scalar(value: f32) -> Self {
        Self::from_parts(vec![1], pool::AVec::from_slice(&[value]))
    }

    /// Create an array from a flat buffer; panics if sizes disagree.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        assert_eq!(
            shape.iter().product::<usize>(),
            data.len(),
            "NdArray::from_vec: shape {shape:?} does not match data length {}",
            data.len()
        );
        Self::from_parts(shape.to_vec(), data)
    }

    /// Internal constructor from already-validated parts. Accepts either a
    /// pool-served [`pool::AVec`] (the hot paths) or a plain `Vec<f32>`
    /// (cold constructors), which is copied into aligned storage.
    #[inline]
    pub(crate) fn from_parts(shape: Vec<usize>, data: impl Into<pool::AVec>) -> Self {
        let data = data.into();
        debug_assert_eq!(shape.iter().product::<usize>(), data.len());
        Self { shape, data: Arc::new(pool::Buffer::new(data)) }
    }

    /// Standard-normal random array.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], rng: &mut R) -> Self {
        let dist = Normal::new(0.0f32, 1.0).expect("valid normal");
        let n = shape.iter().product();
        let mut data = pool::dirty(n);
        for v in data.iter_mut() {
            *v = dist.sample(rng);
        }
        Self::from_parts(shape.to_vec(), data)
    }

    /// Uniform random array over `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let dist = Uniform::new(lo, hi).expect("valid uniform range");
        let n = shape.iter().product();
        let mut data = pool::dirty(n);
        for v in data.iter_mut() {
            *v = dist.sample(rng);
        }
        Self::from_parts(shape.to_vec(), data)
    }

    /// The shape of the array.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Immutable view of the flat data buffer.
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the flat data buffer.
    ///
    /// Copy-on-write: if the buffer is shared with another array (via
    /// `clone()` or [`Self::reshaped`]) it is copied first, so mutations
    /// never alias.
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        Arc::make_mut(&mut self.data).as_mut_slice()
    }

    /// Consume into the flat buffer (copies only if the buffer is shared).
    pub fn into_vec(self) -> Vec<f32> {
        match Arc::try_unwrap(self.data) {
            Ok(buf) => buf.into_vec(),
            Err(shared) => shared.to_vec(),
        }
    }

    /// Serialize to a one-line text form: `shape;data` with space-separated
    /// fields. Values are written via `f32 -> bits` hex so the round-trip is
    /// bitwise exact (plain decimal formatting would lose precision).
    pub fn to_text(&self) -> String {
        let shape = self.shape.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(" ");
        let data =
            self.data.iter().map(|v| format!("{:08x}", v.to_bits())).collect::<Vec<_>>().join(" ");
        format!("{shape};{data}")
    }

    /// Parse [`Self::to_text`] output back into an array.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let (shape_part, data_part) =
            text.split_once(';').ok_or("NdArray text form must contain `;`")?;
        let shape = shape_part
            .split_whitespace()
            .map(|t| t.parse::<usize>().map_err(|e| format!("bad dim `{t}`: {e}")))
            .collect::<Result<Vec<_>, _>>()?;
        let data = data_part
            .split_whitespace()
            .map(|t| {
                u32::from_str_radix(t, 16)
                    .map(f32::from_bits)
                    .map_err(|e| format!("bad value `{t}`: {e}"))
            })
            .collect::<Result<Vec<f32>, _>>()?;
        if shape.iter().product::<usize>() != data.len() {
            return Err(format!(
                "shape {shape:?} does not match {} data values",
                data.len()
            ));
        }
        Ok(Self::from_parts(shape, data))
    }

    /// Serialize to a length-prefixed little-endian binary blob
    /// (same layout as `ParamStore::to_bytes` uses per tensor).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(8 + 8 * self.ndim() + 4 * self.data.len());
        out.extend_from_slice(&(self.ndim() as u64).to_le_bytes());
        for &d in &self.shape {
            out.extend_from_slice(&(d as u64).to_le_bytes());
        }
        for &v in self.data.iter() {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Deserialize from [`Self::to_bytes`] output.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, String> {
        let mut pos = 0usize;
        let read_u64 = |bytes: &[u8], pos: &mut usize| -> Result<u64, String> {
            let sl = bytes.get(*pos..*pos + 8).ok_or("truncated NdArray blob")?;
            *pos += 8;
            Ok(u64::from_le_bytes(sl.try_into().unwrap()))
        };
        let ndim = read_u64(bytes, &mut pos)? as usize;
        let mut shape = Vec::with_capacity(ndim);
        for _ in 0..ndim {
            shape.push(read_u64(bytes, &mut pos)? as usize);
        }
        let n: usize = shape.iter().product();
        let mut data = Vec::with_capacity(n);
        for _ in 0..n {
            let sl = bytes.get(pos..pos + 4).ok_or("truncated NdArray blob")?;
            pos += 4;
            data.push(f32::from_le_bytes(sl.try_into().unwrap()));
        }
        if pos != bytes.len() {
            return Err(format!("{} trailing bytes after NdArray blob", bytes.len() - pos));
        }
        Ok(Self::from_parts(shape, data))
    }

    /// Row-major strides for this shape.
    pub fn strides(&self) -> Vec<usize> {
        strides_of(&self.shape)
    }

    /// Element accessor by multi-index (debug/test convenience; not for hot loops).
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Mutable element accessor by multi-index.
    pub fn at_mut(&mut self, idx: &[usize]) -> &mut f32 {
        let i = self.flat_index(idx);
        &mut self.data_mut()[i]
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.ndim(), "index rank mismatch");
        let strides = self.strides();
        idx.iter()
            .zip(&self.shape)
            .zip(&strides)
            .map(|((&i, &d), &s)| {
                assert!(i < d, "index {i} out of bounds for dim of size {d}");
                i * s
            })
            .sum()
    }

    /// Return a view with a new shape (same number of elements). O(rank):
    /// the data buffer is shared copy-on-write, not copied.
    pub fn reshaped(&self, shape: &[usize]) -> NdArray {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.numel(),
            "reshape from {:?} to {shape:?} changes element count",
            self.shape
        );
        NdArray { shape: shape.to_vec(), data: Arc::clone(&self.data) }
    }

    /// In-place reshape (no data movement).
    pub fn reshape_inplace(&mut self, shape: &[usize]) {
        assert_eq!(
            shape.iter().product::<usize>(),
            self.numel(),
            "reshape from {:?} to {shape:?} changes element count",
            self.shape
        );
        self.shape = shape.to_vec();
    }

    /// Apply `f` element-wise, producing a new array.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> NdArray {
        let mut data = pool::dirty(self.data.len());
        for (d, &s) in data.iter_mut().zip(self.data.iter()) {
            *d = f(s);
        }
        NdArray::from_parts(self.shape.clone(), data)
    }

    /// Apply `f` element-wise in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for v in self.data_mut() {
            *v = f(*v);
        }
    }

    /// Element-wise combine two same-shaped arrays.
    pub fn zip_map(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        assert_eq!(self.shape, other.shape, "zip_map shape mismatch");
        let mut data = pool::dirty(self.data.len());
        for (d, (&a, &b)) in data.iter_mut().zip(self.data.iter().zip(other.data.iter())) {
            *d = f(a, b);
        }
        NdArray::from_parts(self.shape.clone(), data)
    }

    /// Sum of all elements (accumulated in f64 for stability).
    pub fn sum(&self) -> f64 {
        self.data.iter().map(|&x| x as f64).sum()
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Maximum absolute value (0 for empty arrays).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    /// True if any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|x| !x.is_finite())
    }

    // ---------------------------------------------------------------------
    // Broadcasting element-wise arithmetic
    // ---------------------------------------------------------------------

    /// NumPy-style broadcast binary operation.
    ///
    /// Fast paths (same shape, scalar operand, whole-last-axis rows) cover
    /// every broadcast the PriSTI graph emits; the generic odometer walk only
    /// advances per *row*, with the innermost axis handled by a strided loop.
    pub fn broadcast_binary(&self, other: &NdArray, f: impl Fn(f32, f32) -> f32) -> NdArray {
        if self.shape == other.shape {
            return self.zip_map(other, f);
        }
        // Scalar operand (of no higher rank, so the result keeps the other
        // side's shape): a single map over the other side.
        if other.numel() == 1 && other.ndim() <= self.ndim() {
            let b = other.data[0];
            return self.map(|a| f(a, b));
        }
        if self.numel() == 1 && self.ndim() <= other.ndim() {
            let a = self.data[0];
            return other.map(|b| f(a, b));
        }
        let out_shape = broadcast_shape(&self.shape, &other.shape).unwrap_or_else(|| {
            panic!("cannot broadcast {:?} with {:?}", self.shape, other.shape)
        });
        let rank = out_shape.len();
        let a_strides = broadcast_strides(&self.shape, &out_shape);
        let b_strides = broadcast_strides(&other.shape, &out_shape);
        let last = out_shape[rank - 1];
        let rows = out_shape[..rank - 1].iter().product::<usize>();
        let (a_last, b_last) = (a_strides[rank - 1], b_strides[rank - 1]);
        let mut data = pool::dirty(rows * last);
        let mut idx = vec![0usize; rank - 1];
        let (a_buf, b_buf) = (self.data.as_slice(), other.data.as_slice());
        for drow in data.chunks_exact_mut(last) {
            let mut ai = 0;
            let mut bi = 0;
            for (d, &i) in idx.iter().enumerate() {
                ai += i * a_strides[d];
                bi += i * b_strides[d];
            }
            match (a_last, b_last) {
                // Both contiguous along the last axis: plain slice zip.
                (1, 1) => {
                    let ar = &a_buf[ai..ai + last];
                    let br = &b_buf[bi..bi + last];
                    for (d, (&a, &b)) in drow.iter_mut().zip(ar.iter().zip(br)) {
                        *d = f(a, b);
                    }
                }
                // One side constant along the last axis.
                (1, 0) => {
                    let b = b_buf[bi];
                    for (d, &a) in drow.iter_mut().zip(&a_buf[ai..ai + last]) {
                        *d = f(a, b);
                    }
                }
                (0, 1) => {
                    let a = a_buf[ai];
                    for (d, &b) in drow.iter_mut().zip(&b_buf[bi..bi + last]) {
                        *d = f(a, b);
                    }
                }
                _ => {
                    for (j, d) in drow.iter_mut().enumerate() {
                        *d = f(a_buf[ai + j * a_last], b_buf[bi + j * b_last]);
                    }
                }
            }
            for d in (0..rank - 1).rev() {
                idx[d] += 1;
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        NdArray::from_parts(out_shape, data)
    }

    /// Broadcast binary arithmetic through the SIMD element-wise kernels
    /// (see [`crate::simd`]): same-shape, scalar-operand, and contiguous
    /// last-axis row cases run the vector loops; only the strided general
    /// case falls back to the scalar odometer walk. Per element every path
    /// applies the identical IEEE op, so results are bit-identical to
    /// [`Self::broadcast_binary`] with the matching closure.
    fn broadcast_op(&self, other: &NdArray, op: BinOp) -> NdArray {
        if self.shape == other.shape {
            let mut data = pool::dirty(self.data.len());
            simd::binary(op, &mut data, &self.data, &other.data);
            return NdArray::from_parts(self.shape.clone(), data);
        }
        if other.numel() == 1 && other.ndim() <= self.ndim() {
            let b = other.data[0];
            let mut data = pool::dirty(self.data.len());
            simd::binary_scalar(op, &mut data, &self.data, b, false);
            return NdArray::from_parts(self.shape.clone(), data);
        }
        if self.numel() == 1 && self.ndim() <= other.ndim() {
            let a = self.data[0];
            let mut data = pool::dirty(other.data.len());
            simd::binary_scalar(op, &mut data, &other.data, a, true);
            return NdArray::from_parts(other.shape.clone(), data);
        }
        let out_shape = broadcast_shape(&self.shape, &other.shape).unwrap_or_else(|| {
            panic!("cannot broadcast {:?} with {:?}", self.shape, other.shape)
        });
        let rank = out_shape.len();
        let a_strides = broadcast_strides(&self.shape, &out_shape);
        let b_strides = broadcast_strides(&other.shape, &out_shape);
        let last = out_shape[rank - 1];
        let rows = out_shape[..rank - 1].iter().product::<usize>();
        let (a_last, b_last) = (a_strides[rank - 1], b_strides[rank - 1]);
        let mut data = pool::dirty(rows * last);
        let mut idx = vec![0usize; rank - 1];
        let (a_buf, b_buf) = (self.data.as_slice(), other.data.as_slice());
        for drow in data.chunks_exact_mut(last) {
            let mut ai = 0;
            let mut bi = 0;
            for (d, &i) in idx.iter().enumerate() {
                ai += i * a_strides[d];
                bi += i * b_strides[d];
            }
            match (a_last, b_last) {
                // Both contiguous along the last axis: vector row kernel.
                (1, 1) => simd::binary(op, drow, &a_buf[ai..ai + last], &b_buf[bi..bi + last]),
                // One side constant along the last axis (bias rows).
                (1, 0) => {
                    simd::binary_scalar(op, drow, &a_buf[ai..ai + last], b_buf[bi], false);
                }
                (0, 1) => {
                    simd::binary_scalar(op, drow, &b_buf[bi..bi + last], a_buf[ai], true);
                }
                _ => {
                    for (j, d) in drow.iter_mut().enumerate() {
                        *d = op.apply(a_buf[ai + j * a_last], b_buf[bi + j * b_last]);
                    }
                }
            }
            for d in (0..rank - 1).rev() {
                idx[d] += 1;
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        NdArray::from_parts(out_shape, data)
    }

    /// Element-wise addition with broadcasting.
    pub fn add(&self, other: &NdArray) -> NdArray {
        self.broadcast_op(other, BinOp::Add)
    }

    /// Element-wise subtraction with broadcasting.
    pub fn sub(&self, other: &NdArray) -> NdArray {
        self.broadcast_op(other, BinOp::Sub)
    }

    /// Element-wise multiplication with broadcasting.
    pub fn mul(&self, other: &NdArray) -> NdArray {
        self.broadcast_op(other, BinOp::Mul)
    }

    /// Multiply every element by a scalar.
    pub fn scale(&self, c: f32) -> NdArray {
        let mut data = pool::dirty(self.data.len());
        simd::binary_scalar(BinOp::Mul, &mut data, &self.data, c, false);
        NdArray::from_parts(self.shape.clone(), data)
    }

    /// Add a scalar to every element.
    pub fn add_scalar(&self, c: f32) -> NdArray {
        let mut data = pool::dirty(self.data.len());
        simd::binary_scalar(BinOp::Add, &mut data, &self.data, c, false);
        NdArray::from_parts(self.shape.clone(), data)
    }

    /// Fused residual merge `(self + other) * c` (equal shapes only).
    ///
    /// One pass over the operands instead of an `add` materialising an
    /// intermediate that a `scale` immediately re-reads. Per element the
    /// expression performs the same two roundings (add, then mul) as the
    /// unfused pair, so the result is bitwise identical.
    pub fn add_scale(&self, other: &NdArray, c: f32) -> NdArray {
        assert_eq!(
            self.shape, other.shape,
            "add_scale requires equal shapes, got {:?} vs {:?}",
            self.shape, other.shape
        );
        let mut out = pool::dirty(self.data.len());
        for ((o, &x), &y) in out.iter_mut().zip(self.data.iter()).zip(other.data.iter()) {
            *o = (x + y) * c;
        }
        NdArray::from_parts(self.shape.clone(), out)
    }

    /// Fused WaveNet gate: with last axis `2d`, returns `tanh(a) ⊙ σ(b)`
    /// where `a` / `b` are the first / second halves of that axis.
    ///
    /// One pass over strided reads instead of materialising two slice
    /// copies, a tanh map and a sigmoid map; every element goes through the
    /// exact `tanh(a) * sigmoid_f(b)` expression the unfused chain computes,
    /// so the result is bitwise identical.
    pub fn gated_unit(&self) -> NdArray {
        let last = *self.shape.last().expect("gated_unit needs rank >= 1");
        assert_eq!(last % 2, 0, "gated_unit needs an even channel count, got {last}");
        let half = last / 2;
        let rows = self.numel() / last;
        let mut shape = self.shape.clone();
        *shape.last_mut().unwrap() = half;
        let mut out = pool::dirty(rows * half);
        let xd = self.data.as_slice();
        for r in 0..rows {
            let xrow = &xd[r * last..(r + 1) * last];
            let orow = &mut out[r * half..(r + 1) * half];
            for j in 0..half {
                orow[j] = xrow[j].tanh() * crate::graph::sigmoid_f(xrow[half + j]);
            }
        }
        NdArray::from_parts(shape, out)
    }

    /// Accumulate `other * scale` into `self` (same shape). Two roundings
    /// per element (mul, then add) on every tier — never FMA.
    pub fn axpy(&mut self, scale: f32, other: &NdArray) {
        assert_eq!(self.shape, other.shape, "axpy shape mismatch");
        let src = Arc::clone(&other.data);
        simd::axpy(self.data_mut(), scale, src.as_slice());
    }

    /// Sum `self` down to `target_shape` (inverse of broadcasting).
    ///
    /// `target_shape` must be broadcast-compatible with `self.shape` and
    /// obtainable from it by summing over expanded axes.
    pub fn reduce_to_shape(&self, target_shape: &[usize]) -> NdArray {
        if self.shape == target_shape {
            return self.clone();
        }
        let out_rank = self.ndim();
        // Left-pad target with 1s to the same rank.
        let mut padded = vec![1usize; out_rank];
        let offset = out_rank - target_shape.len();
        padded[offset..].copy_from_slice(target_shape);

        let out_strides = strides_of(&padded);
        let mut acc = pool::zeroed(padded.iter().product());
        let src_shape = self.shape.clone();
        let mut idx = vec![0usize; out_rank];
        for &v in self.data.iter() {
            let mut oi = 0;
            for d in 0..out_rank {
                let i = if padded[d] == 1 { 0 } else { idx[d] };
                oi += i * out_strides[d];
            }
            acc[oi] += v;
            for d in (0..out_rank).rev() {
                idx[d] += 1;
                if idx[d] < src_shape[d] {
                    break;
                }
                idx[d] = 0;
            }
        }
        NdArray::from_parts(target_shape.to_vec(), acc)
    }

    // ---------------------------------------------------------------------
    // Matrix multiplication
    // ---------------------------------------------------------------------

    /// 2-D matrix product `self [m,k] @ other [k,n] -> [m,n]`.
    ///
    /// Large products are split into fixed [`ROW_CHUNK`]-row bands (a pure
    /// function of `m`, never of the thread count) that run on the `st-par`
    /// pool; each band's values are identical to the serial kernel's.
    pub fn matmul(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2, "matmul lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul inner dims: {:?} vs {:?}", self.shape, other.shape);
        // dirty: the overwriting kernel stores every output element (bit-
        // identical to `+=` on a zeroed buffer), so the zeroing sweep is skipped.
        let mut data = pool::dirty(m * n);
        let (a, b) = (self.data.as_slice(), other.data.as_slice());
        let band = band_rows("matmul", n, k);
        if st_par::worthwhile("matmul", m * n * k) && m > band {
            st_par::par_chunks_mut("matmul", &mut data, band * n, |ci, chunk| {
                let i0 = ci * band;
                let rows = chunk.len() / n;
                simd::matmul_kernel_set(chunk, &a[i0 * k..(i0 + rows) * k], b, rows, k, n);
            });
        } else {
            simd::matmul_kernel_set(&mut data, a, b, m, k, n);
        }
        NdArray::from_parts(vec![m, n], data)
    }

    /// Fused linear layer: `self [m,k] @ other [k,n] + bias [n]`.
    ///
    /// Same banded dispatch and kernels as [`Self::matmul`]; the bias row
    /// is added to each output row while it is still cache-hot. Each
    /// element sees exactly one extra IEEE add — the same op the separate
    /// broadcast add performs — so the result is bitwise identical to
    /// `matmul(other).add(bias)` with one fewer allocation and full-array
    /// pass.
    pub fn matmul_bias(&self, other: &NdArray, bias: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2, "matmul_bias lhs must be 2-D, got {:?}", self.shape);
        assert_eq!(other.ndim(), 2, "matmul_bias rhs must be 2-D, got {:?}", other.shape);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_bias inner dims: {:?} vs {:?}", self.shape, other.shape);
        assert_eq!(bias.shape(), &[n], "matmul_bias bias must be [{n}], got {:?}", bias.shape);
        let mut data = pool::dirty(m * n);
        let (a, b) = (self.data.as_slice(), other.data.as_slice());
        let bd = bias.data.as_slice();
        let band = band_rows("matmul", n, k);
        if st_par::worthwhile("matmul", m * n * k) && m > band {
            st_par::par_chunks_mut("matmul", &mut data, band * n, |ci, chunk| {
                let i0 = ci * band;
                let rows = chunk.len() / n;
                simd::matmul_kernel_set(chunk, &a[i0 * k..(i0 + rows) * k], b, rows, k, n);
                for row in chunk.chunks_exact_mut(n) {
                    simd::add_inplace(row, bd);
                }
            });
        } else {
            simd::matmul_kernel_set(&mut data, a, b, m, k, n);
            for row in data.chunks_exact_mut(n) {
                simd::add_inplace(row, bd);
            }
        }
        NdArray::from_parts(vec![m, n], data)
    }

    /// 2-D product with transposed rhs: `self [m,k] @ other^T` where `other [n,k]`.
    pub fn matmul_transb(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (m, k) = (self.shape[0], self.shape[1]);
        let (n, k2) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transb inner dims: {:?} vs {:?}", self.shape, other.shape);
        let mut data = pool::dirty(m * n);
        let (a, b) = (self.data.as_slice(), other.data.as_slice());
        let band = band_rows("matmul_transb", n, k);
        if st_par::worthwhile("matmul_transb", m * n * k) && m > band {
            st_par::par_chunks_mut("matmul_transb", &mut data, band * n, |ci, chunk| {
                let i0 = ci * band;
                let rows = chunk.len() / n;
                simd::matmul_transb_kernel_set(chunk, &a[i0 * k..(i0 + rows) * k], b, rows, k, n);
            });
        } else {
            simd::matmul_transb_kernel_set(&mut data, a, b, m, k, n);
        }
        NdArray::from_parts(vec![m, n], data)
    }

    /// 2-D product with transposed lhs: `self^T @ other` where `self [k,m]`, `other [k,n]`.
    pub fn matmul_transa(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 2);
        assert_eq!(other.ndim(), 2);
        let (k, m) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "matmul_transa inner dims: {:?} vs {:?}", self.shape, other.shape);
        let mut data = pool::dirty(m * n);
        simd::matmul_transa_kernel_set(&mut data, &self.data, &other.data, m, k, n);
        NdArray::from_parts(vec![m, n], data)
    }

    /// Batched 3-D matmul: `[B,m,k] @ [B,k,n] -> [B,m,n]`, batch-parallel.
    pub fn batch_matmul(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3, "batch_matmul lhs must be 3-D");
        assert_eq!(other.ndim(), 3, "batch_matmul rhs must be 3-D");
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "batch dims differ");
        assert_eq!(k, k2, "inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut data = pool::dirty(b * m * n);
        let (av, bv) = (self.data.as_slice(), other.data.as_slice());
        batch_dispatch("batch_matmul", &mut data, m * n, b * m * n * k, |i, chunk| {
            simd::matmul_kernel_set(chunk, &av[i * m * k..(i + 1) * m * k], &bv[i * k * n..(i + 1) * k * n], m, k, n);
        });
        NdArray::from_parts(vec![b, m, n], data)
    }

    /// Batched matmul with transposed rhs: `[B,m,k] @ [B,n,k]^T -> [B,m,n]`, batch-parallel.
    pub fn batch_matmul_transb(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3);
        assert_eq!(other.ndim(), 3);
        let (b, m, k) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, n, k2) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "batch dims differ");
        assert_eq!(k, k2, "inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut data = pool::dirty(b * m * n);
        let (av, bv) = (self.data.as_slice(), other.data.as_slice());
        batch_dispatch("batch_matmul_transb", &mut data, m * n, b * m * n * k, |i, chunk| {
            simd::matmul_transb_kernel_set(chunk, &av[i * m * k..(i + 1) * m * k], &bv[i * n * k..(i + 1) * n * k], m, k, n);
        });
        NdArray::from_parts(vec![b, m, n], data)
    }

    /// Batched matmul with transposed lhs: `[B,k,m]^T @ [B,k,n] -> [B,m,n]`, batch-parallel.
    pub fn batch_matmul_transa(&self, other: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3);
        assert_eq!(other.ndim(), 3);
        let (b, k, m) = (self.shape[0], self.shape[1], self.shape[2]);
        let (b2, k2, n) = (other.shape[0], other.shape[1], other.shape[2]);
        assert_eq!(b, b2, "batch dims differ");
        assert_eq!(k, k2, "inner dims differ: {:?} vs {:?}", self.shape, other.shape);
        let mut data = pool::dirty(b * m * n);
        let (av, bv) = (self.data.as_slice(), other.data.as_slice());
        batch_dispatch("batch_matmul_transa", &mut data, m * n, b * m * n * k, |i, chunk| {
            simd::matmul_transa_kernel_set(chunk, &av[i * k * m..(i + 1) * k * m], &bv[i * k * n..(i + 1) * k * n], m, k, n);
        });
        NdArray::from_parts(vec![b, m, n], data)
    }

    /// Shared-left matmul: `s [n,n'] @ self [B,n',d] -> [B,n,d]` applied per
    /// batch (the MPNN adjacency product), batch-parallel.
    pub fn matmul_shared_left(&self, s: &NdArray) -> NdArray {
        assert_eq!(self.ndim(), 3, "matmul_shared_left input must be 3-D");
        assert_eq!(s.ndim(), 2, "shared matrix must be 2-D");
        let (b, np, d) = (self.shape[0], self.shape[1], self.shape[2]);
        let (n, np2) = (s.shape[0], s.shape[1]);
        assert_eq!(np, np2, "shared matmul inner dims: s {:?} x {:?}", s.shape, self.shape);
        let mut data = pool::dirty(b * n * d);
        let (sv, xv) = (s.data.as_slice(), self.data.as_slice());
        batch_dispatch("matmul_shared_left", &mut data, n * d, b * n * d * np, |i, chunk| {
            simd::matmul_kernel_set(chunk, sv, &xv[i * np * d..(i + 1) * np * d], n, np, d);
        });
        NdArray::from_parts(vec![b, n, d], data)
    }

    /// 2-D transpose.
    pub fn transpose2d(&self) -> NdArray {
        assert_eq!(self.ndim(), 2);
        self.permuted(&[1, 0])
    }

    /// General permutation of axes.
    pub fn permuted(&self, perm: &[usize]) -> NdArray {
        assert_eq!(perm.len(), self.ndim(), "perm rank mismatch");
        let mut seen = vec![false; perm.len()];
        for &p in perm {
            assert!(p < perm.len() && !seen[p], "invalid permutation {perm:?}");
            seen[p] = true;
        }
        let out_shape: Vec<usize> = perm.iter().map(|&p| self.shape[p]).collect();
        let in_strides = self.strides();
        // stride in the input for each output axis
        let perm_strides: Vec<usize> = perm.iter().map(|&p| in_strides[p]).collect();
        let rank = out_shape.len();
        let n = self.numel();
        if perm.iter().enumerate().all(|(d, &p)| d == p) {
            return self.clone();
        }
        let src_buf = self.data.as_slice();
        // Head split/merge `[A,B,C,D] -> [A,C,B,D]`: the attention hot
        // pattern. Plain nested loops instead of the odometer — same row
        // copies in the same order, just without per-row index arithmetic
        // through a Vec.
        if rank == 4 && perm == [0, 2, 1, 3] {
            let (a_n, b_n, c_n, d_n) = (self.shape[0], self.shape[1], self.shape[2], self.shape[3]);
            let mut data = pool::dirty(n);
            let mut dst = 0;
            for a in 0..a_n {
                let abase = a * b_n * c_n * d_n;
                for c in 0..c_n {
                    let mut src = abase + c * d_n;
                    for _ in 0..b_n {
                        data[dst..dst + d_n].copy_from_slice(&src_buf[src..src + d_n]);
                        dst += d_n;
                        src += c_n * d_n;
                    }
                }
            }
            return NdArray::from_parts(out_shape, data);
        }
        // 2-D transpose: strided gather per output row, no odometer.
        if rank == 2 && perm == [1, 0] {
            let (r_n, c_n) = (self.shape[0], self.shape[1]);
            let mut data = pool::dirty(n);
            for j in 0..c_n {
                let drow = &mut data[j * r_n..(j + 1) * r_n];
                for (i, d) in drow.iter_mut().enumerate() {
                    *d = src_buf[i * c_n + j];
                }
            }
            return NdArray::from_parts(out_shape, data);
        }
        // Fast path: last axis unchanged -> copy whole contiguous rows.
        if rank >= 2 && perm[rank - 1] == rank - 1 {
            let last = out_shape[rank - 1];
            let mut data = pool::dirty(n);
            let mut idx = vec![0usize; rank - 1];
            let mut src = 0usize;
            for drow in data.chunks_exact_mut(last) {
                drow.copy_from_slice(&src_buf[src..src + last]);
                for d in (0..rank - 1).rev() {
                    idx[d] += 1;
                    src += perm_strides[d];
                    if idx[d] < out_shape[d] {
                        break;
                    }
                    idx[d] = 0;
                    src -= out_shape[d] * perm_strides[d];
                }
            }
            return NdArray::from_parts(out_shape, data);
        }
        let mut data = pool::dirty(n);
        let mut idx = vec![0usize; rank];
        let mut src = 0usize;
        for o in data.iter_mut() {
            *o = src_buf[src];
            for d in (0..rank).rev() {
                idx[d] += 1;
                src += perm_strides[d];
                if idx[d] < out_shape[d] {
                    break;
                }
                idx[d] = 0;
                src -= out_shape[d] * perm_strides[d];
            }
        }
        NdArray::from_parts(out_shape, data)
    }

    /// Concatenate along the last axis. All leading dims must match.
    pub fn concat_last(parts: &[&NdArray]) -> NdArray {
        assert!(!parts.is_empty(), "concat of zero arrays");
        let lead = &parts[0].shape[..parts[0].ndim() - 1];
        let mut last_total = 0usize;
        for p in parts {
            assert_eq!(&p.shape[..p.ndim() - 1], lead, "concat leading dims differ");
            last_total += *p.shape.last().unwrap();
        }
        let rows: usize = lead.iter().product();
        let mut shape = lead.to_vec();
        shape.push(last_total);
        // dirty: the per-part column copies below cover every element.
        let mut data = pool::dirty(rows * last_total);
        let mut col_off = 0usize;
        for p in parts {
            let w = *p.shape.last().unwrap();
            for (drow, srow) in data.chunks_exact_mut(last_total).zip(p.data.chunks_exact(w)) {
                drow[col_off..col_off + w].copy_from_slice(srow);
            }
            col_off += w;
        }
        NdArray::from_parts(shape, data)
    }

    /// Slice `[start, start+len)` of the last axis.
    pub fn slice_last(&self, start: usize, len: usize) -> NdArray {
        let last = *self.shape.last().expect("slice_last on 0-rank array");
        assert!(start + len <= last, "slice_last out of range: {start}+{len} > {last}");
        let rows = self.numel() / last;
        let mut shape = self.shape.clone();
        *shape.last_mut().unwrap() = len;
        let mut data = pool::dirty(rows * len);
        for (r, drow) in data.chunks_exact_mut(len).enumerate() {
            drow.copy_from_slice(&self.data[r * last + start..r * last + start + len]);
        }
        NdArray::from_parts(shape, data)
    }

    /// Softmax over the last axis (numerically stabilised).
    ///
    /// The max and sum reductions run in four fixed lanes (lane `i` covers
    /// row positions `i, i+4, i+8, ...`, remainder folded after) so they
    /// vectorize; the reduction order is a function of the row length alone
    /// — never of thread count — keeping outputs bitwise deterministic.
    pub fn softmax_last(&self) -> NdArray {
        let last = *self.shape.last().expect("softmax on 0-rank array");
        let rows = self.numel() / last;
        let src = self.data.as_slice();
        // Tier resolved once: attention runs tens of thousands of short
        // rows per pass, so per-row dispatch through `active_tier()` costs
        // more than the row kernels themselves.
        let tier = simd::active_tier();
        // dirty: the exp pass writes every element before it is read.
        let mut data = pool::dirty(rows * last);
        for (srow, drow) in src.chunks_exact(last).zip(data.chunks_exact_mut(last)) {
            drow.copy_from_slice(srow);
            simd::softmax_row_at(tier, drow);
        }
        NdArray::from_parts(self.shape.clone(), data)
    }

    /// Fused `softmax_last(self * c)` (attention score scaling).
    ///
    /// The scale lands in the output row right before that row's softmax —
    /// the same `x * c` rounding [`Self::scale`] applies and the exact
    /// [`Self::softmax_last`] row recipe after it, so the result is bitwise
    /// identical to `scale(c).softmax_last()` without materialising the
    /// scaled scores as a separate array.
    pub fn scaled_softmax_last(&self, c: f32) -> NdArray {
        let last = *self.shape.last().expect("softmax on 0-rank array");
        let rows = self.numel() / last;
        let src = self.data.as_slice();
        let tier = simd::active_tier();
        // dirty: the scale pass writes every element before it is read.
        let mut data = pool::dirty(rows * last);
        // The scale runs per row (same `x * c` rounding as `Self::scale` —
        // elementwise, so batching makes no value difference) right before
        // that row's softmax recipe: the row stays L1-hot across all four
        // passes instead of streaming the whole array through memory twice.
        for (srow, drow) in src.chunks_exact(last).zip(data.chunks_exact_mut(last)) {
            simd::binary_scalar_at(tier, simd::BinOp::Mul, drow, srow, c, false);
            simd::softmax_row_at(tier, drow);
        }
        NdArray::from_parts(self.shape.clone(), data)
    }
}

/// `e^x` for non-positive arguments (softmax residuals `x - max <= 0`):
/// Cephes-style range reduction `e^x = 2^n * e^r`, `|r| <= ln2/2`, with a
/// degree-5 polynomial for `e^r`. Max observed error vs `f32::exp` is ~2 ulp
/// (pinned by a test below); arguments at or below the f32 underflow
/// threshold saturate to the smallest positive normal, which normalises to
/// zero weight. Branch-free — no libm call, no rounding intrinsic (the
/// `trunc(t - 0.5)` reduction is exact for `t <= 0`) — so callers' loops
/// auto-vectorize on baseline x86-64.
#[inline]
// The split-constant digits are bit-exact by construction (LN2_HI is 355/512,
// chosen so `nf * LN2_HI` is exact); shortening them would change the value.
#[allow(clippy::excessive_precision)]
pub fn exp_nonpos(x: f32) -> f32 {
    const LOG2E: f32 = std::f32::consts::LOG2_E;
    const LN2_HI: f32 = 0.693_359_375;
    const LN2_LO: f32 = -2.121_944_4e-4;
    debug_assert!(x.is_nan() || x <= 0.0, "exp_nonpos needs x <= 0, got {x}");
    // Below this exp underflows: clamp so the 2^n exponent stays >= 1.
    let x = x.max(-87.336_544);
    // Magic-number round-to-nearest: adding 1.5*2^23 snaps t to an integer
    // (|t| < 2^22 here) and leaves `n + 0x4B400000` in the bit pattern, so
    // both the rounded float and the 2^n exponent fall out without any
    // float->int cast. (Rust's `as i32` saturates, which lowers to scalar
    // conversion chains on baseline x86-64 and blocks vectorization.)
    const MAGIC: f32 = 12_582_912.0; // 1.5 * 2^23
    let u = x * LOG2E + MAGIC;
    let nf = u - MAGIC;
    let r = (x - nf * LN2_HI) - nf * LN2_LO;
    let p = (((((1.987_569_1e-4 * r + 1.398_199_9e-3) * r + 8.333_452e-3) * r
        + 4.166_579_6e-2)
        * r
        + 1.666_666_5e-1)
        * r
        + 5.000_000_4e-1)
        * r
        * r
        + r
        + 1.0;
    let n_plus_bias = (u.to_bits() as i32).wrapping_sub(0x4B40_0000) + 127;
    let scale = f32::from_bits((n_plus_bias << 23) as u32);
    p * scale
}

/// Row-major strides for a shape.
pub fn strides_of(shape: &[usize]) -> Vec<usize> {
    let mut s = vec![1usize; shape.len()];
    for i in (0..shape.len().saturating_sub(1)).rev() {
        s[i] = s[i + 1] * shape[i + 1];
    }
    s
}

/// NumPy broadcast result shape, or `None` when incompatible.
pub fn broadcast_shape(a: &[usize], b: &[usize]) -> Option<Vec<usize>> {
    let rank = a.len().max(b.len());
    let mut out = vec![0usize; rank];
    for i in 0..rank {
        let ad = if i < rank - a.len() { 1 } else { a[i - (rank - a.len())] };
        let bd = if i < rank - b.len() { 1 } else { b[i - (rank - b.len())] };
        out[i] = if ad == bd {
            ad
        } else if ad == 1 {
            bd
        } else if bd == 1 {
            ad
        } else {
            return None;
        };
    }
    Some(out)
}

/// Strides of `shape` viewed as broadcast to `out_shape` (0 for expanded axes).
fn broadcast_strides(shape: &[usize], out_shape: &[usize]) -> Vec<usize> {
    let own = strides_of(shape);
    let rank = out_shape.len();
    let pad = rank - shape.len();
    let mut s = vec![0usize; rank];
    for i in 0..shape.len() {
        s[pad + i] = if shape[i] == 1 { 0 } else { own[i] };
    }
    s
}

/// Minimum rows per parallel band when a single 2-D matmul is split across
/// the pool. A fixed constant (never derived from the thread count) so band
/// boundaries — and therefore results — are identical at any
/// `ST_PAR_THREADS`. A multiple of the MR=4 register-tile height, so bands
/// never split a tile row.
pub const ROW_CHUNK: usize = 32;

/// Rows per parallel band for a 2-D matmul under `label`'s `st-par` policy:
/// the smallest multiple of [`ROW_CHUNK`] whose band carries at least the
/// policy's chunk work (`band * n * k` flops). Pure function of shape and
/// the static policy table — never of the thread count.
fn band_rows(label: &str, n: usize, k: usize) -> usize {
    ROW_CHUNK * st_par::chunk_items(label, ROW_CHUNK * n * k)
}

/// Run `f(batch_index, out_chunk)` for each `per`-element chunk of `out`,
/// on the `st-par` pool when `work` (total flops) clears `label`'s policy
/// gate, serially otherwise. Parallel chunks *group* consecutive batch
/// elements so each claimed chunk carries at least the policy's
/// `min_chunk_work` (the flat one-element-per-chunk split let
/// `batch_matmul_transb` fan 576-flop attention tiles out to 8 threads).
/// Group size derives from shape and the static policy only, and every
/// chunk computes the same values on every path.
pub(crate) fn batch_dispatch(
    label: &'static str,
    out: &mut [f32],
    per: usize,
    work: usize,
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    let nb = out.len().checked_div(per).unwrap_or(0);
    if st_par::worthwhile(label, work) && nb > 1 {
        let group = st_par::chunk_items(label, work / nb).min(nb);
        if nb > group {
            st_par::par_chunks_mut(label, out, per * group, |ci, chunk| {
                for (j, sub) in chunk.chunks_mut(per).enumerate() {
                    f(ci * group + j, sub);
                }
            });
            return;
        }
    }
    for (i, chunk) in out.chunks_mut(per).enumerate() {
        f(i, chunk);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn zeros_ones_full() {
        let z = NdArray::zeros(&[2, 3]);
        assert_eq!(z.shape(), &[2, 3]);
        assert!(z.data().iter().all(|&x| x == 0.0));
        let o = NdArray::ones(&[4]);
        assert!(o.data().iter().all(|&x| x == 1.0));
        let f = NdArray::full(&[2, 2], 7.5);
        assert!(f.data().iter().all(|&x| x == 7.5));
    }

    #[test]
    fn indexing_round_trip() {
        let mut a = NdArray::zeros(&[2, 3, 4]);
        *a.at_mut(&[1, 2, 3]) = 42.0;
        assert_eq!(a.at(&[1, 2, 3]), 42.0);
        assert_eq!(a.data()[12 + 2 * 4 + 3], 42.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn index_out_of_bounds_panics() {
        let a = NdArray::zeros(&[2, 2]);
        a.at(&[0, 2]);
    }

    #[test]
    fn matmul_small_known() {
        let a = NdArray::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let b = NdArray::from_vec(&[3, 2], vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_transb_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = NdArray::randn(&[4, 5], &mut rng);
        let b = NdArray::randn(&[3, 5], &mut rng);
        let c1 = a.matmul_transb(&b);
        let c2 = a.matmul(&b.transpose2d());
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_transa_matches_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = NdArray::randn(&[5, 4], &mut rng);
        let b = NdArray::randn(&[5, 3], &mut rng);
        let c1 = a.matmul_transa(&b);
        let c2 = a.transpose2d().matmul(&b);
        for (x, y) in c1.data().iter().zip(c2.data()) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn batch_matmul_matches_loop() {
        let mut rng = StdRng::seed_from_u64(3);
        let a = NdArray::randn(&[3, 2, 4], &mut rng);
        let b = NdArray::randn(&[3, 4, 5], &mut rng);
        let c = a.batch_matmul(&b);
        assert_eq!(c.shape(), &[3, 2, 5]);
        for i in 0..3 {
            let ai = NdArray::from_vec(&[2, 4], a.data()[i * 8..(i + 1) * 8].to_vec());
            let bi = NdArray::from_vec(&[4, 5], b.data()[i * 20..(i + 1) * 20].to_vec());
            let ci = ai.matmul(&bi);
            for (x, y) in ci.data().iter().zip(&c.data()[i * 10..(i + 1) * 10]) {
                assert!((x - y).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shared_left_matmul_matches_per_batch() {
        let mut rng = StdRng::seed_from_u64(4);
        let s = NdArray::randn(&[3, 3], &mut rng);
        let x = NdArray::randn(&[2, 3, 4], &mut rng);
        let y = x.matmul_shared_left(&s);
        for b in 0..2 {
            let xb = NdArray::from_vec(&[3, 4], x.data()[b * 12..(b + 1) * 12].to_vec());
            let yb = s.matmul(&xb);
            for (u, v) in yb.data().iter().zip(&y.data()[b * 12..(b + 1) * 12]) {
                assert!((u - v).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn shared_left_matmul_rectangular() {
        // Downsampling shape: s [k,n] @ x [B,n,d] -> [B,k,d]
        let mut rng = StdRng::seed_from_u64(5);
        let s = NdArray::randn(&[2, 5], &mut rng);
        let x = NdArray::randn(&[3, 5, 4], &mut rng);
        let y = x.matmul_shared_left(&s);
        assert_eq!(y.shape(), &[3, 2, 4]);
    }

    #[test]
    fn permute_round_trip() {
        let mut rng = StdRng::seed_from_u64(6);
        let a = NdArray::randn(&[2, 3, 4, 5], &mut rng);
        let p = a.permuted(&[2, 0, 3, 1]);
        assert_eq!(p.shape(), &[4, 2, 5, 3]);
        // inverse permutation of [2,0,3,1] is [1,3,0,2]
        let back = p.permuted(&[1, 3, 0, 2]);
        assert_eq!(back, a);
    }

    #[test]
    fn permute_values_correct() {
        let a = NdArray::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let t = a.permuted(&[1, 0]);
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1., 4., 2., 5., 3., 6.]);
    }

    #[test]
    fn broadcast_add_bias() {
        let a = NdArray::from_vec(&[2, 3], vec![0., 0., 0., 1., 1., 1.]);
        let b = NdArray::from_vec(&[3], vec![10., 20., 30.]);
        let c = a.add(&b);
        assert_eq!(c.data(), &[10., 20., 30., 11., 21., 31.]);
    }

    #[test]
    fn broadcast_middle_ones() {
        let a = NdArray::from_vec(&[2, 1, 2], vec![1., 2., 3., 4.]);
        let b = NdArray::from_vec(&[1, 3, 1], vec![10., 20., 30.]);
        let c = a.add(&b);
        assert_eq!(c.shape(), &[2, 3, 2]);
        assert_eq!(c.at(&[0, 0, 0]), 11.);
        assert_eq!(c.at(&[0, 2, 1]), 32.);
        assert_eq!(c.at(&[1, 1, 0]), 23.);
    }

    #[test]
    fn reduce_to_shape_inverts_broadcast() {
        let g = NdArray::ones(&[2, 3, 4]);
        let r = g.reduce_to_shape(&[4]);
        assert_eq!(r.shape(), &[4]);
        assert!(r.data().iter().all(|&x| (x - 6.0).abs() < 1e-6));
        let r2 = g.reduce_to_shape(&[1, 3, 1]);
        assert_eq!(r2.shape(), &[1, 3, 1]);
        assert!(r2.data().iter().all(|&x| (x - 8.0).abs() < 1e-6));
    }

    #[test]
    fn concat_and_slice_inverse() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = NdArray::randn(&[2, 3], &mut rng);
        let b = NdArray::randn(&[2, 5], &mut rng);
        let c = NdArray::concat_last(&[&a, &b]);
        assert_eq!(c.shape(), &[2, 8]);
        assert_eq!(c.slice_last(0, 3), a);
        assert_eq!(c.slice_last(3, 5), b);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = StdRng::seed_from_u64(8);
        let a = NdArray::randn(&[4, 7], &mut rng).scale(3.0);
        let s = a.softmax_last();
        for r in 0..4 {
            let sum: f32 = s.data()[r * 7..(r + 1) * 7].iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
            assert!(s.data()[r * 7..(r + 1) * 7].iter().all(|&x| x >= 0.0));
        }
    }

    #[test]
    fn softmax_handles_large_values() {
        let a = NdArray::from_vec(&[1, 3], vec![1000., 1000., 1000.]);
        let s = a.softmax_last();
        for &v in s.data() {
            assert!((v - 1.0 / 3.0).abs() < 1e-5);
        }
    }

    #[test]
    fn reshape_checks_numel() {
        let a = NdArray::zeros(&[2, 6]);
        let b = a.reshaped(&[3, 4]);
        assert_eq!(b.shape(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "changes element count")]
    fn reshape_bad_numel_panics() {
        NdArray::zeros(&[2, 6]).reshaped(&[5]);
    }

    #[test]
    fn strides_row_major() {
        assert_eq!(strides_of(&[2, 3, 4]), vec![12, 4, 1]);
        assert_eq!(strides_of(&[5]), vec![1]);
        assert_eq!(strides_of(&[]), Vec::<usize>::new());
    }

    #[test]
    fn broadcast_shape_rules() {
        assert_eq!(broadcast_shape(&[2, 3], &[3]), Some(vec![2, 3]));
        assert_eq!(broadcast_shape(&[2, 1, 4], &[3, 1]), Some(vec![2, 3, 4]));
        assert_eq!(broadcast_shape(&[2, 3], &[4]), None);
    }

    #[test]
    fn text_round_trip_is_bitwise_exact() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = NdArray::randn(&[2, 3, 4], &mut rng);
        let b = NdArray::from_text(&a.to_text()).unwrap();
        assert_eq!(a, b);
        // subnormals / specials survive too
        let odd = NdArray::from_vec(&[4], vec![f32::MIN_POSITIVE / 2.0, -0.0, 1e-38, 3.5]);
        let rt = NdArray::from_text(&odd.to_text()).unwrap();
        assert_eq!(odd.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                   rt.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>());
    }

    #[test]
    fn text_rejects_malformed() {
        assert!(NdArray::from_text("no separator").is_err());
        assert!(NdArray::from_text("2 2;00000000").is_err()); // count mismatch
        assert!(NdArray::from_text("1;zz").is_err());
    }

    #[test]
    fn bytes_round_trip_is_bitwise_exact() {
        let mut rng = StdRng::seed_from_u64(12);
        let a = NdArray::rand_uniform(&[3, 5], -2.0, 2.0, &mut rng);
        let bytes = a.to_bytes();
        assert_eq!(NdArray::from_bytes(&bytes).unwrap(), a);
        assert!(NdArray::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(NdArray::from_bytes(&extra).is_err());
    }
}
