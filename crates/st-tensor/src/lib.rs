//! # st-tensor
//!
//! A from-scratch dense-tensor and reverse-mode automatic-differentiation
//! substrate for the PriSTI-rs workspace.
//!
//! No external deep-learning framework is used anywhere in this project: the
//! paper's model (graph-attention conditional diffusion) and all deep
//! baselines are built on the primitives in this crate:
//!
//! * [`ndarray::NdArray`] — row-major `f32` arrays with broadcasting,
//!   (batched) matmul, permutation and softmax;
//! * [`graph::Graph`] — an autodiff tape recording one forward pass, with
//!   [`graph::Graph::backward`] producing per-parameter gradients;
//! * [`nn`] — layers: linear / 1×1 conv, layer norm, multi-head attention
//!   (including PriSTI's prior-weighted and virtual-node variants), the
//!   Graph-WaveNet MPNN, gated activation, GRU cell, dilated causal conv and
//!   sinusoidal embeddings;
//! * [`param::ParamStore`] / [`optim::Adam`] — named parameter storage and
//!   optimisation with the paper's step-decay learning-rate schedule.
//!
//! Every op's gradient is verified against central finite differences in the
//! crate's property-test suite (`tests/gradcheck.rs`).

#![warn(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod backward;
pub mod graph;
pub mod ndarray;
pub mod pool;
pub mod simd;
pub mod nn;
pub mod optim;
pub mod param;

pub use graph::{Gradients, Graph, Tx};
pub use ndarray::NdArray;
pub use optim::{clip_grad_norm, pristi_lr, Adam};
pub use param::ParamStore;
