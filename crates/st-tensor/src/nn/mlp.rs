//! Two-layer perceptron with SiLU activation (the paper's `MLP(·)`).

use crate::graph::{Graph, Tx};
use crate::nn::Linear;
use crate::param::ParamStore;
use st_rand::Rng;

/// `y = W₂ · silu(W₁ x + b₁) + b₂`.
#[derive(Debug, Clone)]
pub struct Mlp {
    l1: Linear,
    l2: Linear,
}

impl Mlp {
    /// Register an MLP with the given widths.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_hidden: usize,
        d_out: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            l1: Linear::new(store, &format!("{name}.l1"), d_in, d_hidden, rng),
            l2: Linear::new(store, &format!("{name}.l2"), d_hidden, d_out, rng),
        }
    }

    /// Input feature size.
    pub fn d_in(&self) -> usize {
        self.l1.d_in
    }

    /// Output feature size.
    pub fn d_out(&self) -> usize {
        self.l2.d_out
    }

    /// Apply the MLP along the last axis.
    pub fn forward(&self, g: &mut Graph<'_>, x: Tx) -> Tx {
        let h = self.l1.forward(g, x);
        let a = g.silu(h);
        self.l2.forward(g, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndarray::NdArray;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn shapes_and_grads() {
        let mut rng = StdRng::seed_from_u64(24);
        let mut store = ParamStore::new();
        let mlp = Mlp::new(&mut store, "m", 6, 12, 3, &mut rng);
        assert_eq!(mlp.d_in(), 6);
        assert_eq!(mlp.d_out(), 3);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[4, 5, 6], &mut rng));
        let y = mlp.forward(&mut g, x);
        assert_eq!(g.shape(y), &[4, 5, 3]);
        let t = g.input(NdArray::zeros(&[4, 5, 3]));
        let m = g.input(NdArray::ones(&[4, 5, 3]));
        let loss = g.mse_masked(y, t, m);
        let grads = g.backward(loss);
        assert_eq!(grads.len(), 4);
    }
}
