//! Neural-network layers built on the autodiff tape.
//!
//! Layers are lightweight descriptors: at construction they register their
//! parameters (by hierarchical name) in a [`crate::param::ParamStore`]; at
//! forward time they pull those parameters onto the current
//! [`crate::graph::Graph`] and compose primitive ops. This keeps the layer
//! structs `Clone`-free of tensor data and lets one store be shared across
//! training steps.

mod attention;
mod conv;
mod embedding;
mod gate;
mod gru;
mod linear;
mod mlp;
mod mpnn;
mod norm;

pub use attention::MultiHeadAttention;
pub use conv::DilatedConv1d;
pub use embedding::{diffusion_step_embedding, sinusoidal_encoding};
pub use gate::gated_activation;
pub use gru::GruCell;
pub use linear::Linear;
pub use mlp::Mlp;
pub use mpnn::Mpnn;
pub use norm::LayerNorm;
