//! Graph-WaveNet-style message-passing / diffusion convolution (`MPNN(·)`).
//!
//! Following Wu et al. (IJCAI 2019) as adopted by PriSTI: the layer mixes a
//! node-feature tensor `[B, N, d]` with powers of fixed bidirectional
//! transition matrices plus an *adaptively learned* adjacency
//! `A_adp = softmax(relu(E₁ E₂ᵀ))`, then projects the concatenation back to
//! `d` channels.

use crate::graph::{Graph, Tx};
use crate::ndarray::NdArray;
use crate::nn::Linear;
use crate::param::{normal_init, ParamStore};
use st_rand::Rng;

/// Diffusion-convolution message passing with optional adaptive adjacency.
#[derive(Debug, Clone)]
pub struct Mpnn {
    /// Fixed support matrices (row-normalised transition matrices), `[N, N]`.
    supports: Vec<NdArray>,
    /// Names of the adaptive node-embedding parameters, if enabled.
    adaptive: Option<(String, String)>,
    proj: Linear,
    /// Diffusion order (number of matrix powers per support).
    pub order: usize,
    /// Feature width.
    pub d_model: usize,
}

impl Mpnn {
    /// Register an MPNN. `supports` are fixed `[N,N]` transition matrices
    /// (typically forward and backward); when `adaptive_dim > 0` an adaptive
    /// adjacency over `n_nodes` is learned as well.
    #[allow(clippy::too_many_arguments)]
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        supports: Vec<NdArray>,
        n_nodes: usize,
        order: usize,
        adaptive_dim: usize,
        rng: &mut R,
    ) -> Self {
        for s in &supports {
            assert_eq!(s.shape(), &[n_nodes, n_nodes], "support must be [N,N]");
        }
        let adaptive = if adaptive_dim > 0 {
            let e1 = format!("{name}.e1");
            let e2 = format!("{name}.e2");
            store.insert(&e1, normal_init(&[n_nodes, adaptive_dim], 0.3, rng));
            store.insert(&e2, normal_init(&[n_nodes, adaptive_dim], 0.3, rng));
            Some((e1, e2))
        } else {
            None
        };
        let n_mats = supports.len() + usize::from(adaptive.is_some());
        let d_cat = d_model * (1 + n_mats * order);
        let proj = Linear::new(store, &format!("{name}.proj"), d_cat, d_model, rng);
        Self { supports, adaptive, proj, order, d_model }
    }

    /// Number of fixed supports.
    pub fn n_supports(&self) -> usize {
        self.supports.len()
    }

    /// Apply message passing to `x [B, N, d]`.
    pub fn forward(&self, g: &mut Graph<'_>, x: Tx) -> Tx {
        let adp = self.adaptive_adjacency(g);
        self.forward_with_adaptive(g, x, adp)
    }

    /// Build the adaptive adjacency `A_adp = softmax(relu(E₁E₂ᵀ))` (`[N, N]`),
    /// or `None` when the layer has no adaptive embeddings.
    ///
    /// The result depends only on the learned node embeddings — not on the
    /// layer input — so at inference time it can be computed once and replayed
    /// across all reverse-diffusion steps via [`forward_with_adaptive`].
    ///
    /// [`forward_with_adaptive`]: Self::forward_with_adaptive
    pub fn adaptive_adjacency(&self, g: &mut Graph<'_>) -> Option<Tx> {
        self.adaptive.as_ref().map(|(e1n, e2n)| {
            let e1 = g.param(e1n);
            let e2 = g.param(e2n);
            // E1 [N,a] @ E2^T [a,N]
            let e2t = g.permute(e2, &[1, 0]);
            let raw = g.matmul(e1, e2t);
            let act = g.relu(raw);
            g.softmax_last(act)
        })
    }

    /// Apply message passing to `x [B, N, d]` with a precomputed adaptive
    /// adjacency (as produced by [`adaptive_adjacency`]); pass `None` iff the
    /// layer has no adaptive embeddings.
    ///
    /// [`adaptive_adjacency`]: Self::adaptive_adjacency
    pub fn forward_with_adaptive(&self, g: &mut Graph<'_>, x: Tx, adp: Option<Tx>) -> Tx {
        // Composite timing for the whole diffusion-convolution block
        // (overlaps the primitive op kinds inside; see DESIGN.md).
        let t0 = st_obs::op_start();
        let shape = g.shape(x).to_vec();
        assert_eq!(shape.len(), 3, "mpnn input must be [B,N,d], got {shape:?}");
        assert_eq!(shape[2], self.d_model);
        assert_eq!(
            adp.is_some(),
            self.adaptive.is_some(),
            "adaptive adjacency presence must match layer configuration"
        );

        let mut parts: Vec<Tx> = vec![x];
        for s in &self.supports {
            let st = g.input(s.clone());
            let mut h = x;
            for _ in 0..self.order {
                h = g.shared_left_matmul(st, h);
                parts.push(h);
            }
        }
        if let Some(adp) = adp {
            let mut h = x;
            for _ in 0..self.order {
                h = g.shared_left_matmul(adp, h);
                parts.push(h);
            }
        }
        let cat = g.concat_last(&parts);
        let y = self.proj.forward(g, cat);
        st_obs::record_op(st_obs::Phase::Fwd, "mpnn", t0, g.value(y).numel() as u64);
        y
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    fn row_normalised(n: usize, rng: &mut StdRng) -> NdArray {
        let mut a = NdArray::rand_uniform(&[n, n], 0.0, 1.0, rng);
        for r in 0..n {
            let row = &mut a.data_mut()[r * n..(r + 1) * n];
            let s: f32 = row.iter().sum();
            for v in row.iter_mut() {
                *v /= s;
            }
        }
        a
    }

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(21);
        let s1 = row_normalised(5, &mut rng);
        let s2 = row_normalised(5, &mut rng);
        let mut store = ParamStore::new();
        let mpnn = Mpnn::new(&mut store, "mp", 8, vec![s1, s2], 5, 2, 4, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[3, 5, 8], &mut rng));
        let y = mpnn.forward(&mut g, x);
        assert_eq!(g.shape(y), &[3, 5, 8]);
    }

    #[test]
    fn adaptive_embeddings_receive_gradients() {
        let mut rng = StdRng::seed_from_u64(22);
        let s1 = row_normalised(4, &mut rng);
        let mut store = ParamStore::new();
        let mpnn = Mpnn::new(&mut store, "mp", 4, vec![s1], 4, 1, 3, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[2, 4, 4], &mut rng));
        let y = mpnn.forward(&mut g, x);
        let t = g.input(NdArray::zeros(&[2, 4, 4]));
        let m = g.input(NdArray::ones(&[2, 4, 4]));
        let loss = g.mse_masked(y, t, m);
        let grads = g.backward(loss);
        assert!(grads.get("mp.e1").is_some());
        assert!(grads.get("mp.e2").is_some());
        assert!(grads.get("mp.proj.w").is_some());
    }

    #[test]
    fn no_adaptive_when_dim_zero() {
        let mut rng = StdRng::seed_from_u64(23);
        let s1 = row_normalised(4, &mut rng);
        let mut store = ParamStore::new();
        let mpnn = Mpnn::new(&mut store, "mp", 4, vec![s1], 4, 2, 0, &mut rng);
        assert!(mpnn.adaptive.is_none());
        assert!(!store.contains("mp.e1"));
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[1, 4, 4], &mut rng));
        let y = mpnn.forward(&mut g, x);
        assert_eq!(g.shape(y), &[1, 4, 4]);
    }
}
