//! Dilated causal 1-D convolution layer (used by the Graph-WaveNet-style
//! downstream forecaster's temporal blocks).

use crate::graph::{Graph, Tx};
use crate::ndarray::NdArray;
use crate::param::{normal_init, ParamStore};
use st_rand::Rng;

/// Causal 1-D convolution along the time axis of a `[B, L, C_in]` tensor.
#[derive(Debug, Clone)]
pub struct DilatedConv1d {
    w: String,
    b: String,
    /// Dilation factor.
    pub dilation: usize,
    /// Kernel width.
    pub kernel: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
}

impl DilatedConv1d {
    /// Register a conv layer under `name` with He-style initialisation.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        kernel: usize,
        c_in: usize,
        c_out: usize,
        dilation: usize,
        rng: &mut R,
    ) -> Self {
        let w = format!("{name}.w");
        let b = format!("{name}.b");
        let std = (2.0 / (kernel * c_in) as f32).sqrt();
        store.insert(&w, normal_init(&[kernel, c_in, c_out], std, rng));
        store.insert(&b, NdArray::zeros(&[c_out]));
        Self { w, b, dilation, kernel, c_in, c_out }
    }

    /// Apply the convolution; output has the same length (causal left padding).
    pub fn forward(&self, g: &mut Graph<'_>, x: Tx) -> Tx {
        let w = g.param(&self.w);
        let b = g.param(&self.b);
        g.conv1d_causal(x, w, b, self.dilation)
    }

    /// Receptive field in time steps.
    pub fn receptive_field(&self) -> usize {
        (self.kernel - 1) * self.dilation + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn output_shape_preserved() {
        let mut rng = StdRng::seed_from_u64(28);
        let mut store = ParamStore::new();
        let conv = DilatedConv1d::new(&mut store, "c", 2, 3, 5, 2, &mut rng);
        assert_eq!(conv.receptive_field(), 3);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[2, 10, 3], &mut rng));
        let y = conv.forward(&mut g, x);
        assert_eq!(g.shape(y), &[2, 10, 5]);
    }

    #[test]
    fn causality_future_does_not_leak() {
        let mut rng = StdRng::seed_from_u64(29);
        let mut store = ParamStore::new();
        let conv = DilatedConv1d::new(&mut store, "c", 3, 1, 1, 1, &mut rng);
        // Two inputs identical up to t=4, different afterwards.
        let mut a = NdArray::zeros(&[1, 8, 1]);
        let mut bvals = NdArray::zeros(&[1, 8, 1]);
        for t in 0..8 {
            let v = (t as f32).sin();
            a.data_mut()[t] = v;
            bvals.data_mut()[t] = if t <= 4 { v } else { v + 10.0 };
        }
        let mut g = Graph::new(&store);
        let xa = g.input(a);
        let xb = g.input(bvals);
        let ya = conv.forward(&mut g, xa);
        let yb = conv.forward(&mut g, xb);
        for t in 0..=4 {
            assert!(
                (g.value(ya).data()[t] - g.value(yb).data()[t]).abs() < 1e-6,
                "causal conv leaked future at t={t}"
            );
        }
    }

    #[test]
    fn gradients_flow() {
        let mut rng = StdRng::seed_from_u64(30);
        let mut store = ParamStore::new();
        let conv = DilatedConv1d::new(&mut store, "c", 2, 2, 3, 1, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[2, 6, 2], &mut rng));
        let y = conv.forward(&mut g, x);
        let t = g.input(NdArray::zeros(&[2, 6, 3]));
        let m = g.input(NdArray::ones(&[2, 6, 3]));
        let loss = g.mse_masked(y, t, m);
        let grads = g.backward(loss);
        assert!(grads.get("c.w").is_some());
        assert!(grads.get("c.b").is_some());
    }
}
