//! Sine–cosine positional encodings: the temporal encoding `U_tem`
//! (Transformer-style, Vaswani et al. 2017) and the diffusion-step embedding
//! (DiffWave-style, Kong et al. 2021), both referenced in Section III-B3.

use crate::ndarray::NdArray;

/// Transformer sinusoidal positional encoding: `[length, dim]` with
/// `pe[p, 2i] = sin(p / 10000^{2i/dim})`, `pe[p, 2i+1] = cos(...)`.
pub fn sinusoidal_encoding(length: usize, dim: usize) -> NdArray {
    assert!(dim >= 2 && dim % 2 == 0, "encoding dim must be even and >= 2, got {dim}");
    let mut out = NdArray::zeros(&[length, dim]);
    for p in 0..length {
        for i in 0..dim / 2 {
            let angle = p as f64 / 10000f64.powf(2.0 * i as f64 / dim as f64);
            out.data_mut()[p * dim + 2 * i] = angle.sin() as f32;
            out.data_mut()[p * dim + 2 * i + 1] = angle.cos() as f32;
        }
    }
    out
}

/// Diffusion-step embedding for a batch of step indices: `[B, dim]` where the
/// first half holds `sin(t · 10^{−j·4/(dim/2−1)})` and the second half the
/// matching cosines (DiffWave Eq. for `t_emb`).
pub fn diffusion_step_embedding(steps: &[usize], dim: usize) -> NdArray {
    assert!(dim >= 4 && dim % 2 == 0, "step embedding dim must be even and >= 4, got {dim}");
    let half = dim / 2;
    let mut out = NdArray::zeros(&[steps.len(), dim]);
    for (b, &t) in steps.iter().enumerate() {
        for j in 0..half {
            let freq = 10f64.powf(-(j as f64) * 4.0 / (half as f64 - 1.0));
            let angle = t as f64 * freq;
            out.data_mut()[b * dim + j] = angle.sin() as f32;
            out.data_mut()[b * dim + half + j] = angle.cos() as f32;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sinusoidal_shape_and_range() {
        let pe = sinusoidal_encoding(10, 16);
        assert_eq!(pe.shape(), &[10, 16]);
        assert!(pe.data().iter().all(|&v| (-1.0..=1.0).contains(&v)));
        // position 0: sin(0)=0, cos(0)=1 alternating
        for i in 0..8 {
            assert_eq!(pe.data()[2 * i], 0.0);
            assert_eq!(pe.data()[2 * i + 1], 1.0);
        }
    }

    #[test]
    fn sinusoidal_rows_distinct() {
        let pe = sinusoidal_encoding(32, 8);
        for p in 1..32 {
            let a = &pe.data()[0..8];
            let b = &pe.data()[p * 8..p * 8 + 8];
            let diff: f32 = a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum();
            assert!(diff > 1e-3, "row {p} equals row 0");
        }
    }

    #[test]
    fn step_embedding_distinguishes_steps() {
        let e = diffusion_step_embedding(&[0, 1, 50], 128);
        assert_eq!(e.shape(), &[3, 128]);
        let r0 = &e.data()[0..128];
        let r1 = &e.data()[128..256];
        let d: f32 = r0.iter().zip(r1).map(|(a, b)| (a - b).abs()).sum();
        assert!(d > 0.1);
    }
}
