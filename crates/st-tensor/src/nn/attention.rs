//! Dot-product multi-head attention, including PriSTI's two variants:
//!
//! * **prior-weighted attention** (Eqs. 7–8): queries and keys are projected
//!   from the conditional feature `H^pri` while values come from the noisy
//!   input `H^in`, so the attention *weights* are computed from clean
//!   information only;
//! * **virtual-node downsampling** (Eq. 9): keys and values are projected
//!   onto `k < N` virtual nodes through learnable matrices, reducing spatial
//!   attention cost from `O(N²d)` to `O(Nkd)`.

use crate::graph::{Graph, Tx};
use crate::nn::Linear;
use crate::param::{normal_init, ParamStore};
use st_rand::Rng;

/// Multi-head scaled-dot-product attention over the middle (sequence) axis of
/// a `[B, S, d]` input.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    /// Optional `(key_proj_name, value_proj_name, k)` virtual-node downsampling.
    downsample: Option<(String, String, usize)>,
    /// Number of attention heads.
    pub heads: usize,
    /// Model width; must be divisible by `heads`.
    pub d_model: usize,
}

impl MultiHeadAttention {
    /// Register a standard multi-head attention block.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        heads: usize,
        rng: &mut R,
    ) -> Self {
        assert_eq!(d_model % heads, 0, "d_model {d_model} not divisible by heads {heads}");
        Self {
            wq: Linear::new_no_bias(store, &format!("{name}.wq"), d_model, d_model, rng),
            wk: Linear::new_no_bias(store, &format!("{name}.wk"), d_model, d_model, rng),
            wv: Linear::new_no_bias(store, &format!("{name}.wv"), d_model, d_model, rng),
            wo: Linear::new_no_bias(store, &format!("{name}.wo"), d_model, d_model, rng),
            downsample: None,
            heads,
            d_model,
        }
    }

    /// Register attention with virtual-node downsampling of keys/values
    /// (Eq. 9): `seq_len` source positions are mixed down to `k` virtual ones.
    pub fn new_downsampled<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_model: usize,
        heads: usize,
        seq_len: usize,
        k: usize,
        rng: &mut R,
    ) -> Self {
        let mut s = Self::new(store, name, d_model, heads, rng);
        if k < seq_len {
            let pk = format!("{name}.pk");
            let pv = format!("{name}.pv");
            // Small-normal init so the k virtual nodes start as soft mixtures.
            let std = 1.0 / (seq_len as f32).sqrt();
            store.insert(&pk, normal_init(&[k, seq_len], std, rng));
            store.insert(&pv, normal_init(&[k, seq_len], std, rng));
            s.downsample = Some((pk, pv, k));
        }
        s
    }

    /// Self-attention: Q, K and V all projected from `x`.
    pub fn forward_self(&self, g: &mut Graph<'_>, x: Tx) -> Tx {
        self.forward(g, x, x)
    }

    /// Prior-weighted attention (Eqs. 7–8): attention weights from `qk_src`
    /// (the conditional feature `H^pri`), values from `v_src` (`H^in`).
    ///
    /// Both inputs must be `[B, S, d_model]` with the same `B` and `S`.
    pub fn forward(&self, g: &mut Graph<'_>, qk_src: Tx, v_src: Tx) -> Tx {
        let attn = self.attention_weights(g, qk_src);
        self.forward_with_weights(g, attn, v_src)
    }

    /// Compute only the softmaxed attention weight matrix
    /// `softmax(QKᵀ/√dₕ)` of shape `[B*heads, S, S_kv]` from `qk_src`
    /// (`[B, S, d_model]`).
    ///
    /// In PriSTI's prior-weighted attention Q and K come from `H^pri`, which
    /// is constant across all reverse-diffusion steps, so the result can be
    /// computed once per request and replayed with [`forward_with_weights`]
    /// at every denoise step (`Self::forward` is exactly that composition).
    pub fn attention_weights(&self, g: &mut Graph<'_>, qk_src: Tx) -> Tx {
        let shape = g.shape(qk_src).to_vec();
        assert_eq!(shape.len(), 3, "attention input must be [B,S,d], got {shape:?}");
        let (b, s, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.d_model);
        let dh = d / self.heads;

        let q = self.wq.forward(g, qk_src);
        let mut k = self.wk.forward(g, qk_src);
        let mut s_kv = s;
        if let Some((pk, _, kn)) = &self.downsample {
            let pk_t = g.param(pk);
            k = g.shared_left_matmul(pk_t, k);
            s_kv = *kn;
        }

        let qh = self.split_heads(g, q, b, s, dh);
        let kh = self.split_heads(g, k, b, s_kv, dh);

        // Composite timing for the score computation (QK^T, scale, softmax):
        // overlaps the primitive op kinds it is made of; see DESIGN.md
        // §"Observability" for the double-counting caveat.
        let t0 = st_obs::op_start();
        let scores = g.batch_matmul_transb(qh, kh);
        let attn = g.scaled_softmax_last(scores, 1.0 / (dh as f32).sqrt());
        st_obs::record_op(st_obs::Phase::Fwd, "attention_qk", t0, g.value(attn).numel() as u64);
        attn
    }

    /// Apply precomputed attention weights `attn` (`[B*heads, S, S_kv]`, as
    /// produced by [`attention_weights`]) to values projected from `v_src`
    /// (`[B, S, d_model]`): `W_o · (attn · V)`.
    ///
    /// [`attention_weights`]: Self::attention_weights
    pub fn forward_with_weights(&self, g: &mut Graph<'_>, attn: Tx, v_src: Tx) -> Tx {
        let shape = g.shape(v_src).to_vec();
        assert_eq!(shape.len(), 3, "attention value input must be [B,S,d], got {shape:?}");
        let (b, s, d) = (shape[0], shape[1], shape[2]);
        assert_eq!(d, self.d_model);
        let dh = d / self.heads;

        let mut v = self.wv.forward(g, v_src);
        let mut s_kv = s;
        if let Some((_, pv, kn)) = &self.downsample {
            let pv_t = g.param(pv);
            v = g.shared_left_matmul(pv_t, v);
            s_kv = *kn;
        }
        let vh = self.split_heads(g, v, b, s_kv, dh);
        assert_eq!(
            g.shape(attn),
            &[b * self.heads, s, s_kv],
            "attention weights shape mismatch"
        );

        let ctx = g.batch_matmul(attn, vh); // [B*h, S, dh]
        let merged = self.merge_heads(g, ctx, b, s, dh);
        self.wo.forward(g, merged)
    }

    fn split_heads(&self, g: &mut Graph<'_>, x: Tx, b: usize, s: usize, dh: usize) -> Tx {
        let x4 = g.reshape(x, &[b, s, self.heads, dh]);
        let xp = g.permute(x4, &[0, 2, 1, 3]);
        g.reshape(xp, &[b * self.heads, s, dh])
    }

    fn merge_heads(&self, g: &mut Graph<'_>, x: Tx, b: usize, s: usize, dh: usize) -> Tx {
        let x4 = g.reshape(x, &[b, self.heads, s, dh]);
        let xp = g.permute(x4, &[0, 2, 1, 3]);
        g.reshape(xp, &[b, s, self.heads * dh])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndarray::NdArray;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn self_attention_shape() {
        let mut rng = StdRng::seed_from_u64(16);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[3, 5, 8], &mut rng));
        let y = attn.forward_self(&mut g, x);
        assert_eq!(g.shape(y), &[3, 5, 8]);
    }

    #[test]
    fn prior_weighted_attention_differs_from_self() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 8, 2, &mut rng);
        let mut g = Graph::new(&store);
        let prior = g.input(NdArray::randn(&[2, 4, 8], &mut rng));
        let noisy = g.input(NdArray::randn(&[2, 4, 8], &mut rng));
        let y_cross = attn.forward(&mut g, prior, noisy);
        let y_self = attn.forward_self(&mut g, noisy);
        let diff: f32 = g
            .value(y_cross)
            .data()
            .iter()
            .zip(g.value(y_self).data())
            .map(|(a, b)| (a - b).abs())
            .sum();
        assert!(diff > 1e-3, "cross and self attention should differ");
    }

    #[test]
    fn downsampled_attention_shape_and_grads() {
        let mut rng = StdRng::seed_from_u64(18);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new_downsampled(&mut store, "a", 8, 2, 10, 3, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[2, 10, 8], &mut rng));
        let y = attn.forward_self(&mut g, x);
        assert_eq!(g.shape(y), &[2, 10, 8]);
        let t = g.input(NdArray::zeros(&[2, 10, 8]));
        let m = g.input(NdArray::ones(&[2, 10, 8]));
        let loss = g.mse_masked(y, t, m);
        let grads = g.backward(loss);
        assert!(grads.get("a.pk").is_some(), "downsample key projection should get grad");
        assert!(grads.get("a.pv").is_some(), "downsample value projection should get grad");
    }

    #[test]
    fn no_downsample_when_k_not_smaller() {
        let mut rng = StdRng::seed_from_u64(19);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new_downsampled(&mut store, "a", 8, 2, 4, 8, &mut rng);
        assert!(attn.downsample.is_none());
        assert!(!store.contains("a.pk"));
    }

    /// A uniform value tensor must be reproduced exactly by attention
    /// (softmax rows sum to one, so any convex combination is the same value).
    #[test]
    fn attention_preserves_constant_values() {
        let mut rng = StdRng::seed_from_u64(20);
        let mut store = ParamStore::new();
        let attn = MultiHeadAttention::new(&mut store, "a", 4, 1, &mut rng);
        // Make wv/wo identity and wq/wk whatever.
        let eye = NdArray::from_vec(
            &[4, 4],
            (0..16).map(|i| if i % 5 == 0 { 1.0 } else { 0.0 }).collect(),
        );
        *store.get_mut("a.wv.w").unwrap() = eye.clone();
        *store.get_mut("a.wo.w").unwrap() = eye;
        let mut g = Graph::new(&store);
        let qk = g.input(NdArray::randn(&[1, 6, 4], &mut rng));
        let v = g.input(NdArray::full(&[1, 6, 4], 2.5));
        let y = attn.forward(&mut g, qk, v);
        for &o in g.value(y).data() {
            assert!((o - 2.5).abs() < 1e-4, "got {o}");
        }
    }
}
