//! WaveNet-style gated activation unit used by the noise estimation module:
//! the channel axis is split in half and combined as `tanh(a) ⊙ σ(b)`.

use crate::graph::{Graph, Tx};

/// Apply the gated activation to a tensor whose last axis has even size `2d`,
/// producing a tensor with last axis `d`.
pub fn gated_activation(g: &mut Graph<'_>, x: Tx) -> Tx {
    let last = *g.shape(x).last().expect("gated activation needs rank >= 1");
    assert_eq!(last % 2, 0, "gated activation needs an even channel count, got {last}");
    let half = last / 2;
    let a = g.slice_last(x, 0, half);
    let b = g.slice_last(x, half, half);
    let ta = g.tanh(a);
    let sb = g.sigmoid(b);
    g.mul(ta, sb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndarray::NdArray;
    use crate::param::ParamStore;

    #[test]
    fn halves_channels() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::ones(&[2, 3, 8]));
        let y = gated_activation(&mut g, x);
        assert_eq!(g.shape(y), &[2, 3, 4]);
    }

    #[test]
    fn matches_manual_formula() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::from_vec(&[1, 4], vec![0.5, -1.0, 2.0, 0.0]));
        let y = gated_activation(&mut g, x);
        let v = g.value(y);
        let expect0 = 0.5f32.tanh() * (1.0 / (1.0 + (-2.0f32).exp()));
        let expect1 = (-1.0f32).tanh() * 0.5;
        assert!((v.data()[0] - expect0).abs() < 1e-6);
        assert!((v.data()[1] - expect1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "even channel count")]
    fn odd_channels_panic() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::ones(&[2, 3]));
        gated_activation(&mut g, x);
    }
}
