//! WaveNet-style gated activation unit used by the noise estimation module:
//! the channel axis is split in half and combined as `tanh(a) ⊙ σ(b)`.

use crate::graph::{Graph, Tx};

/// Apply the gated activation to a tensor whose last axis has even size `2d`,
/// producing a tensor with last axis `d`.
///
/// Records the fused [`Graph::gated_unit`] op: one tape node (and one value
/// buffer) instead of the five-node slice/slice/tanh/sigmoid/mul chain,
/// bitwise identical to it in both directions.
pub fn gated_activation(g: &mut Graph<'_>, x: Tx) -> Tx {
    g.gated_unit(x)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndarray::NdArray;
    use crate::param::ParamStore;

    #[test]
    fn halves_channels() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::ones(&[2, 3, 8]));
        let y = gated_activation(&mut g, x);
        assert_eq!(g.shape(y), &[2, 3, 4]);
    }

    #[test]
    fn matches_manual_formula() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::from_vec(&[1, 4], vec![0.5, -1.0, 2.0, 0.0]));
        let y = gated_activation(&mut g, x);
        let v = g.value(y);
        let expect0 = 0.5f32.tanh() * (1.0 / (1.0 + (-2.0f32).exp()));
        let expect1 = (-1.0f32).tanh() * 0.5;
        assert!((v.data()[0] - expect0).abs() < 1e-6);
        assert!((v.data()[1] - expect1).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "even channel count")]
    fn odd_channels_panic() {
        let store = ParamStore::new();
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::ones(&[2, 3]));
        gated_activation(&mut g, x);
    }
}
