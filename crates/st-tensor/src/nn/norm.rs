//! Layer normalisation (the paper's `Norm(·)` in Eq. 5).

use crate::graph::{Graph, Tx};
use crate::ndarray::NdArray;
use crate::param::ParamStore;

/// Layer normalisation over the last axis with learnable gain and bias.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    gain: String,
    bias: String,
    eps: f32,
    /// Normalised feature size.
    pub dim: usize,
}

impl LayerNorm {
    /// Register gain (ones) and bias (zeros) under `name`.
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> Self {
        let gain = format!("{name}.gain");
        let bias = format!("{name}.bias");
        store.insert(&gain, NdArray::ones(&[dim]));
        store.insert(&bias, NdArray::zeros(&[dim]));
        Self { gain, bias, eps: 1e-5, dim }
    }

    /// Apply normalisation.
    pub fn forward(&self, g: &mut Graph<'_>, x: Tx) -> Tx {
        let gain = g.param(&self.gain);
        let bias = g.param(&self.bias);
        g.layer_norm(x, gain, bias, self.eps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn normalises_rows_to_zero_mean_unit_var() {
        let mut rng = StdRng::seed_from_u64(14);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 8);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[5, 8], &mut rng).scale(4.0).add_scalar(3.0));
        let y = ln.forward(&mut g, x);
        let v = g.value(y);
        for r in 0..5 {
            let row = &v.data()[r * 8..(r + 1) * 8];
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|&x| (x - mean) * (x - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-4, "row mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "row var {var}");
        }
    }

    #[test]
    fn gain_bias_receive_gradients() {
        let mut rng = StdRng::seed_from_u64(15);
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[3, 4], &mut rng));
        let y = ln.forward(&mut g, x);
        let t = g.input(NdArray::zeros(&[3, 4]));
        let m = g.input(NdArray::ones(&[3, 4]));
        let loss = g.mse_masked(y, t, m);
        let grads = g.backward(loss);
        assert!(grads.get("ln.gain").is_some());
        assert!(grads.get("ln.bias").is_some());
    }
}
