//! Fully-connected layer applied to the last axis (also serves as the paper's
//! 1×1 convolution `Conv(·)` over channels).

use crate::graph::{Graph, Tx};
use crate::ndarray::NdArray;
use crate::param::{xavier_uniform, ParamStore};
use st_rand::Rng;

/// `y = x @ W + b` over the last axis of an arbitrary-rank input.
#[derive(Debug, Clone)]
pub struct Linear {
    w: String,
    b: Option<String>,
    /// Input feature size.
    pub d_in: usize,
    /// Output feature size.
    pub d_out: usize,
}

impl Linear {
    /// Register a linear layer's parameters under `name` (`{name}.w`, `{name}.b`).
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut R,
    ) -> Self {
        let w = format!("{name}.w");
        let b = format!("{name}.b");
        store.insert(&w, xavier_uniform(d_in, d_out, rng));
        store.insert(&b, NdArray::zeros(&[d_out]));
        Self { w, b: Some(b), d_in, d_out }
    }

    /// Bias-free variant (used for attention projections).
    pub fn new_no_bias<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_out: usize,
        rng: &mut R,
    ) -> Self {
        let w = format!("{name}.w");
        store.insert(&w, xavier_uniform(d_in, d_out, rng));
        Self { w, b: None, d_in, d_out }
    }

    /// Register with weights initialised to zero (used for the final output
    /// projection of the noise predictor, following DiffWave practice).
    pub fn new_zeros(store: &mut ParamStore, name: &str, d_in: usize, d_out: usize) -> Self {
        let w = format!("{name}.w");
        let b = format!("{name}.b");
        store.insert(&w, NdArray::zeros(&[d_in, d_out]));
        store.insert(&b, NdArray::zeros(&[d_out]));
        Self { w, b: Some(b), d_in, d_out }
    }

    /// Apply the layer. Accepts any rank ≥ 1; the last axis must equal `d_in`.
    pub fn forward(&self, g: &mut Graph<'_>, x: Tx) -> Tx {
        let shape = g.shape(x).to_vec();
        let last = *shape.last().expect("linear input must have rank >= 1");
        assert_eq!(last, self.d_in, "linear expected last dim {}, got {last}", self.d_in);
        let rows: usize = shape[..shape.len() - 1].iter().product();
        let flat = g.reshape(x, &[rows, self.d_in]);
        let w = g.param(&self.w);
        let y = if let Some(bname) = &self.b {
            let b = g.param(bname);
            g.matmul_bias(flat, w, b)
        } else {
            g.matmul(flat, w)
        };
        let mut out_shape = shape;
        *out_shape.last_mut().unwrap() = self.d_out;
        g.reshape(y, &out_shape)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn forward_shape_any_rank() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 4, 7, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[2, 3, 5, 4], &mut rng));
        let y = lin.forward(&mut g, x);
        assert_eq!(g.shape(y), &[2, 3, 5, 7]);
    }

    #[test]
    fn bias_is_added() {
        let mut rng = StdRng::seed_from_u64(12);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 2, 2, &mut rng);
        store.get_mut("l.w").unwrap().map_inplace(|_| 0.0);
        store.get_mut("l.b").unwrap().data_mut().copy_from_slice(&[1.5, -2.5]);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::ones(&[3, 2]));
        let y = lin.forward(&mut g, x);
        for r in 0..3 {
            assert_eq!(g.value(y).data()[r * 2], 1.5);
            assert_eq!(g.value(y).data()[r * 2 + 1], -2.5);
        }
    }

    #[test]
    fn gradients_reach_both_params() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let lin = Linear::new(&mut store, "l", 3, 2, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[4, 3], &mut rng));
        let y = lin.forward(&mut g, x);
        let t = g.input(NdArray::zeros(&[4, 2]));
        let m = g.input(NdArray::ones(&[4, 2]));
        let loss = g.mse_masked(y, t, m);
        let grads = g.backward(loss);
        assert!(grads.get("l.w").is_some());
        assert!(grads.get("l.b").is_some());
        assert_eq!(grads.get("l.w").unwrap().shape(), &[3, 2]);
        assert_eq!(grads.get("l.b").unwrap().shape(), &[2]);
    }
}
