//! Gated recurrent unit cell, used by the recurrent baselines (BRITS, GRIN,
//! rGAIN generator, V-RIN encoder).

use crate::graph::{Graph, Tx};
use crate::nn::Linear;
use crate::param::ParamStore;
use st_rand::Rng;

/// A single GRU cell: `h' = (1-z) ⊙ h + z ⊙ tanh(W_h x + U_h (r ⊙ h))`.
#[derive(Debug, Clone)]
pub struct GruCell {
    wz: Linear,
    uz: Linear,
    wr: Linear,
    ur: Linear,
    wh: Linear,
    uh: Linear,
    /// Input feature size.
    pub d_in: usize,
    /// Hidden state size.
    pub d_hidden: usize,
}

impl GruCell {
    /// Register a GRU cell's parameters under `name`.
    pub fn new<R: Rng + ?Sized>(
        store: &mut ParamStore,
        name: &str,
        d_in: usize,
        d_hidden: usize,
        rng: &mut R,
    ) -> Self {
        Self {
            wz: Linear::new(store, &format!("{name}.wz"), d_in, d_hidden, rng),
            uz: Linear::new_no_bias(store, &format!("{name}.uz"), d_hidden, d_hidden, rng),
            wr: Linear::new(store, &format!("{name}.wr"), d_in, d_hidden, rng),
            ur: Linear::new_no_bias(store, &format!("{name}.ur"), d_hidden, d_hidden, rng),
            wh: Linear::new(store, &format!("{name}.wh"), d_in, d_hidden, rng),
            uh: Linear::new_no_bias(store, &format!("{name}.uh"), d_hidden, d_hidden, rng),
            d_in,
            d_hidden,
        }
    }

    /// One step: `x [B, d_in]`, `h [B, d_hidden]` → new hidden `[B, d_hidden]`.
    pub fn step(&self, g: &mut Graph<'_>, x: Tx, h: Tx) -> Tx {
        let zx = self.wz.forward(g, x);
        let zh = self.uz.forward(g, h);
        let z_pre = g.add(zx, zh);
        let z = g.sigmoid(z_pre);

        let rx = self.wr.forward(g, x);
        let rh = self.ur.forward(g, h);
        let r_pre = g.add(rx, rh);
        let r = g.sigmoid(r_pre);

        let rh_gated = g.mul(r, h);
        let hx = self.wh.forward(g, x);
        let hh = self.uh.forward(g, rh_gated);
        let h_pre = g.add(hx, hh);
        let h_cand = g.tanh(h_pre);

        // h' = (1-z) * h + z * h_cand = h + z * (h_cand - h)
        let delta = g.sub(h_cand, h);
        let zd = g.mul(z, delta);
        g.add(h, zd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ndarray::NdArray;
    use st_rand::StdRng;
    use st_rand::SeedableRng;

    #[test]
    fn step_shape() {
        let mut rng = StdRng::seed_from_u64(25);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 3, 6, &mut rng);
        let mut g = Graph::new(&store);
        let x = g.input(NdArray::randn(&[4, 3], &mut rng));
        let h = g.input(NdArray::zeros(&[4, 6]));
        let h2 = gru.step(&mut g, x, h);
        assert_eq!(g.shape(h2), &[4, 6]);
    }

    #[test]
    fn hidden_stays_bounded() {
        // GRU hidden values are convex mixes of tanh outputs, so |h| <= 1.
        let mut rng = StdRng::seed_from_u64(26);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 2, 4, &mut rng);
        let mut g = Graph::new(&store);
        let mut h = g.input(NdArray::zeros(&[1, 4]));
        for _ in 0..50 {
            let x = g.input(NdArray::randn(&[1, 2], &mut rng).scale(5.0));
            h = gru.step(&mut g, x, h);
        }
        assert!(g.value(h).data().iter().all(|&v| v.abs() <= 1.0 + 1e-5));
    }

    #[test]
    fn unrolled_sequence_trains() {
        // A GRU should be able to learn to output the last input of a sequence.
        let mut rng = StdRng::seed_from_u64(27);
        let mut store = ParamStore::new();
        let gru = GruCell::new(&mut store, "g", 1, 8, &mut rng);
        let head = Linear::new(&mut store, "head", 8, 1, &mut rng);
        let mut opt = crate::optim::Adam::new(0.01);
        let mut last_loss = f32::MAX;
        for it in 0..120 {
            let (loss_val, grads) = {
                let mut g = Graph::new(&store);
                let mut h = g.input(NdArray::zeros(&[8, 8]));
                let mut xs = NdArray::zeros(&[8, 1]);
                for t in 0..5 {
                    xs = NdArray::randn(&[8, 1], &mut rng);
                    let x = g.input(xs.clone());
                    let _ = t;
                    h = gru.step(&mut g, x, h);
                }
                let y = head.forward(&mut g, h);
                let target = g.input(xs);
                let m = g.input(NdArray::ones(&[8, 1]));
                let loss = g.mse_masked(y, target, m);
                (g.value(loss).data()[0], g.backward(loss))
            };
            opt.step(&mut store, &grads);
            if it == 119 {
                last_loss = loss_val;
            }
        }
        assert!(last_loss < 0.5, "GRU failed to learn identity-of-last: {last_loss}");
    }
}
