//! Reverse-mode automatic differentiation tape.
//!
//! A [`Graph`] records every operation of one forward pass as a node in an
//! arena; [`Graph::backward`] then walks the arena in reverse, applying the
//! gradient rule of each op (see [`crate::backward`]). Tensors are plain
//! indices ([`Tx`]) into the arena, which keeps the API `Copy`-friendly and
//! avoids interior mutability entirely: the tape is single-threaded by
//! design (one tape per training step).
//!
//! Every op method captures an [`st_obs::op_start`] token before its kernel
//! runs and hands it to [`Graph::push`], which folds the elapsed time and
//! element count into the global recorder under `fwd.<kind>` (a no-op —
//! one relaxed atomic load — when no recorder is installed). The matching
//! backward timings are recorded by [`crate::backward::backprop`] under
//! `bwd.<kind>`.

use crate::backward::backprop;
use crate::ndarray::NdArray;
use crate::param::ParamStore;
use st_rand::Rng;
use std::collections::BTreeMap;

/// Handle to a tensor on the tape (an index into the node arena).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct Tx(pub(crate) usize);

/// Recorded operation; inputs are tape indices, auxiliary data is stored inline.
#[derive(Debug, Clone)]
pub(crate) enum Op {
    /// Leaf with no gradient (data, targets, masks, precomputed features).
    Input,
    /// Leaf whose gradient is collected under the given parameter name.
    Param(String),
    Add(Tx, Tx),
    Sub(Tx, Tx),
    Mul(Tx, Tx),
    Scale(Tx, f32),
    AddScalar(Tx),
    Exp(Tx),
    Matmul(Tx, Tx),
    BatchMatmul(Tx, Tx),
    BatchMatmulTransB(Tx, Tx),
    SharedLeftMatmul { s: Tx, x: Tx },
    Permute(Tx, Vec<usize>),
    Reshape(Tx),
    ConcatLast(Vec<Tx>),
    SliceLast { x: Tx, start: usize, len: usize },
    SoftmaxLast(Tx),
    Relu(Tx),
    LeakyRelu(Tx, f32),
    Sigmoid(Tx),
    Tanh(Tx),
    Silu(Tx),
    Softplus(Tx),
    LayerNorm { x: Tx, gain: Tx, bias: Tx, eps: f32 },
    Dropout { x: Tx, mask: NdArray },
    SumAll(Tx),
    MeanAll(Tx),
    MseMasked { pred: Tx, target: Tx, mask: Tx },
    MaeMasked { pred: Tx, target: Tx, mask: Tx },
    Conv1dCausal { x: Tx, w: Tx, b: Tx, dilation: usize },
    /// Fused `tanh(a) ⊙ σ(b)` over the two halves of the last axis
    /// (replaces a slice/slice/tanh/sigmoid/mul chain — see
    /// [`Graph::gated_unit`]).
    GatedUnit(Tx),
    /// Fused `softmax_last(x * c)` (replaces a scale/softmax chain — see
    /// [`Graph::scaled_softmax_last`]).
    ScaledSoftmax(Tx, f32),
    /// Fused `(a + b) * c`, equal shapes (replaces an add/scale chain —
    /// see [`Graph::add_scale`]).
    AddScale(Tx, Tx, f32),
    /// Fused linear layer `a [m,k] @ w [k,n] + bias [n]` (replaces a
    /// matmul/broadcast-add chain — see [`Graph::matmul_bias`]).
    MatmulBias { a: Tx, w: Tx, bias: Tx },
}

impl Op {
    /// Stable op-kind name used as the `kind` of `fwd.*` / `bwd.*` telemetry
    /// aggregates (and in the bench/JSONL vocabularies — keep in sync with
    /// DESIGN.md §"Observability").
    pub(crate) fn kind(&self) -> &'static str {
        match self {
            Op::Input => "input",
            Op::Param(_) => "param",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::Scale(..) => "scale",
            Op::AddScalar(_) => "add_scalar",
            Op::Exp(_) => "exp",
            Op::Matmul(..) => "matmul",
            Op::BatchMatmul(..) => "batch_matmul",
            Op::BatchMatmulTransB(..) => "batch_matmul_transb",
            Op::SharedLeftMatmul { .. } => "shared_left_matmul",
            Op::Permute(..) => "permute",
            Op::Reshape(_) => "reshape",
            Op::ConcatLast(_) => "concat_last",
            Op::SliceLast { .. } => "slice_last",
            Op::SoftmaxLast(_) => "softmax_last",
            Op::Relu(_) => "relu",
            Op::LeakyRelu(..) => "leaky_relu",
            Op::Sigmoid(_) => "sigmoid",
            Op::Tanh(_) => "tanh",
            Op::Silu(_) => "silu",
            Op::Softplus(_) => "softplus",
            Op::LayerNorm { .. } => "layer_norm",
            Op::Dropout { .. } => "dropout",
            Op::SumAll(_) => "sum_all",
            Op::MeanAll(_) => "mean_all",
            Op::MseMasked { .. } => "mse_masked",
            Op::MaeMasked { .. } => "mae_masked",
            Op::Conv1dCausal { .. } => "conv1d_causal",
            Op::GatedUnit(_) => "gated_unit",
            Op::ScaledSoftmax(..) => "scaled_softmax",
            Op::AddScale(..) => "add_scale",
            Op::MatmulBias { .. } => "matmul_bias",
        }
    }
}

pub(crate) struct Node {
    pub value: NdArray,
    pub op: Op,
}

/// Gradients produced by a backward pass, keyed by parameter name.
///
/// Backed by a `BTreeMap` so iteration order is deterministic: float
/// reductions over all gradients (notably [`Gradients::global_norm`]) are
/// order-sensitive in their last ULP, and a hash-map order made the reported
/// gradient norm differ between two same-seed runs.
#[derive(Debug, Default)]
pub struct Gradients {
    by_param: BTreeMap<String, NdArray>,
}

impl Gradients {
    /// Gradient for a named parameter, if it participated in the loss.
    pub fn get(&self, name: &str) -> Option<&NdArray> {
        self.by_param.get(name)
    }

    /// Iterate over `(name, grad)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &NdArray)> {
        self.by_param.iter()
    }

    /// Number of parameters that received a gradient.
    pub fn len(&self) -> usize {
        self.by_param.len()
    }

    /// True when no parameter received a gradient.
    pub fn is_empty(&self) -> bool {
        self.by_param.is_empty()
    }

    /// Total number of gradient elements across all parameters.
    pub fn numel(&self) -> usize {
        self.by_param.values().map(NdArray::numel).sum()
    }

    /// Global L2 norm across all parameter gradients (accumulated in f64).
    pub fn global_norm(&self) -> f64 {
        self.by_param
            .values()
            .map(|g| g.data().iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>())
            .sum::<f64>()
            .sqrt()
    }

    /// Scale every gradient in place (used by gradient clipping).
    pub fn scale_all(&mut self, c: f32) {
        for g in self.by_param.values_mut() {
            g.map_inplace(|x| x * c);
        }
    }

    /// Scale every gradient in place with the multiply carried out in f64.
    ///
    /// [`Gradients::global_norm`] accumulates in f64; clipping with an f32
    /// factor re-rounds twice (factor, then product) and can leave the
    /// post-clip norm a few ULP above the threshold. Computing
    /// `(x as f64) * c` and rounding once keeps the clipped norm within one
    /// f32 rounding of the target (pinned by `clip_exactly_at_boundary_*`
    /// tests in `crate::optim`).
    pub fn scale_all_f64(&mut self, c: f64) {
        for g in self.by_param.values_mut() {
            g.map_inplace(|x| ((x as f64) * c) as f32);
        }
    }

    /// Keep only gradients whose parameter name starts with `prefix` (used by
    /// the GAN baselines to update generator and discriminator parameters
    /// with their own losses).
    pub fn retain_prefix(&mut self, prefix: &str) {
        self.by_param.retain(|name, _| name.starts_with(prefix));
    }

    pub(crate) fn insert_or_add(&mut self, name: &str, grad: &NdArray) {
        match self.by_param.get_mut(name) {
            Some(g) => g.axpy(1.0, grad),
            None => {
                self.by_param.insert(name.to_string(), grad.clone());
            }
        }
    }
}

/// One forward pass worth of autodiff tape.
pub struct Graph<'s> {
    store: &'s ParamStore,
    pub(crate) nodes: Vec<Node>,
    train: bool,
}

impl<'s> Graph<'s> {
    /// Create an empty tape that resolves parameters from `store`.
    pub fn new(store: &'s ParamStore) -> Self {
        Self { store, nodes: Vec::with_capacity(256), train: true }
    }

    /// Create a tape in evaluation mode (dropout becomes identity).
    pub fn new_eval(store: &'s ParamStore) -> Self {
        Self { store, nodes: Vec::with_capacity(256), train: false }
    }

    /// Whether this tape runs in training mode.
    pub fn is_train(&self) -> bool {
        self.train
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Append a node, folding `(now - t0, numel)` into the `fwd.<kind>`
    /// telemetry aggregate.
    fn push(&mut self, value: NdArray, op: Op, t0: st_obs::OpStart) -> Tx {
        debug_assert!(!value.has_non_finite() || matches!(op, Op::Input), "non-finite value produced by {op:?}");
        st_obs::record_op(st_obs::Phase::Fwd, op.kind(), t0, value.numel() as u64);
        self.nodes.push(Node { value, op });
        Tx(self.nodes.len() - 1)
    }

    /// The value currently held by a tensor.
    pub fn value(&self, t: Tx) -> &NdArray {
        &self.nodes[t.0].value
    }

    /// Shape of a tensor.
    pub fn shape(&self, t: Tx) -> &[usize] {
        self.nodes[t.0].value.shape()
    }

    // ------------------------------------------------------------------
    // Leaves
    // ------------------------------------------------------------------

    /// Add a non-differentiable leaf (data, mask, target, conditioner).
    pub fn input(&mut self, value: NdArray) -> Tx {
        let t0 = st_obs::op_start();
        self.push(value, Op::Input, t0)
    }

    /// Fetch a named parameter from the store as a differentiable leaf.
    pub fn param(&mut self, name: &str) -> Tx {
        let t0 = st_obs::op_start();
        let value = self
            .store
            .get(name)
            .unwrap_or_else(|| panic!("parameter `{name}` not found in store"))
            .clone();
        self.push(value, Op::Param(name.to_string()), t0)
    }

    // ------------------------------------------------------------------
    // Element-wise arithmetic (with broadcasting)
    // ------------------------------------------------------------------

    /// `a + b` with NumPy broadcasting.
    pub fn add(&mut self, a: Tx, b: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.add(&self.nodes[b.0].value);
        self.push(v, Op::Add(a, b), t0)
    }

    /// `a - b` with NumPy broadcasting.
    pub fn sub(&mut self, a: Tx, b: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.sub(&self.nodes[b.0].value);
        self.push(v, Op::Sub(a, b), t0)
    }

    /// `a * b` element-wise with NumPy broadcasting.
    pub fn mul(&mut self, a: Tx, b: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.mul(&self.nodes[b.0].value);
        self.push(v, Op::Mul(a, b), t0)
    }

    /// `a * c` for scalar `c`.
    pub fn scale(&mut self, a: Tx, c: f32) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.scale(c);
        self.push(v, Op::Scale(a, c), t0)
    }

    /// `a + c` for scalar `c`.
    pub fn add_scalar(&mut self, a: Tx, c: f32) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.add_scalar(c);
        self.push(v, Op::AddScalar(a), t0)
    }

    /// Element-wise exponential.
    pub fn exp(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.map(|x| x.exp());
        self.push(v, Op::Exp(a), t0)
    }

    /// Element-wise square (recorded as `a * a`).
    pub fn square(&mut self, a: Tx) -> Tx {
        self.mul(a, a)
    }

    // ------------------------------------------------------------------
    // Fused element-wise chains
    //
    // Each op below replaces a chain of primitive tape nodes with a single
    // node: one value allocation instead of several, one forward pass over
    // the operands, and one backward rule instead of a gradient buffer per
    // link. All three are pinned bitwise identical to their unfused chains
    // (forward and backward) by `tests/fusion_equivalence.rs`.
    // ------------------------------------------------------------------

    /// Fused WaveNet gate `tanh(a) ⊙ σ(b)` over the two halves of the last
    /// axis (size `2d` in, `d` out). Replaces the five-node
    /// slice/slice/tanh/sigmoid/mul chain.
    pub fn gated_unit(&mut self, x: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[x.0].value.gated_unit();
        self.push(v, Op::GatedUnit(x), t0)
    }

    /// Fused `softmax_last(a * c)` (attention score scaling). Replaces the
    /// scale/softmax chain and its backward's intermediate gradient buffer.
    pub fn scaled_softmax_last(&mut self, a: Tx, c: f32) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.scaled_softmax_last(c);
        self.push(v, Op::ScaledSoftmax(a, c), t0)
    }

    /// Fused residual merge `(a + b) * c` (equal shapes only). Replaces the
    /// add/scale chain.
    pub fn add_scale(&mut self, a: Tx, b: Tx, c: f32) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.add_scale(&self.nodes[b.0].value, c);
        self.push(v, Op::AddScale(a, b, c), t0)
    }

    /// Fused linear layer `a @ w + bias` (see [`NdArray::matmul_bias`]).
    /// Replaces the matmul/broadcast-add pair on the Linear hot path: the
    /// bias is added while each output row is cache-hot, skipping one
    /// allocation and one full pass over the `[m, n]` product.
    pub fn matmul_bias(&mut self, a: Tx, w: Tx, bias: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.matmul_bias(&self.nodes[w.0].value, &self.nodes[bias.0].value);
        self.push(v, Op::MatmulBias { a, w, bias }, t0)
    }

    // ------------------------------------------------------------------
    // Linear algebra
    // ------------------------------------------------------------------

    /// 2-D matmul `[m,k] @ [k,n]`.
    pub fn matmul(&mut self, a: Tx, b: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.matmul(&self.nodes[b.0].value);
        self.push(v, Op::Matmul(a, b), t0)
    }

    /// Batched matmul `[B,m,k] @ [B,k,n]`.
    pub fn batch_matmul(&mut self, a: Tx, b: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.batch_matmul(&self.nodes[b.0].value);
        self.push(v, Op::BatchMatmul(a, b), t0)
    }

    /// Batched matmul with transposed rhs `[B,m,k] @ [B,n,k]^T` (attention scores).
    pub fn batch_matmul_transb(&mut self, a: Tx, b: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.batch_matmul_transb(&self.nodes[b.0].value);
        self.push(v, Op::BatchMatmulTransB(a, b), t0)
    }

    /// `s [n,n'] @ x[b]` for every batch of `x [B,n',d]` (graph convolution).
    pub fn shared_left_matmul(&mut self, s: Tx, x: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[x.0].value.matmul_shared_left(&self.nodes[s.0].value);
        self.push(v, Op::SharedLeftMatmul { s, x }, t0)
    }

    // ------------------------------------------------------------------
    // Shape manipulation
    // ------------------------------------------------------------------

    /// Permute axes.
    pub fn permute(&mut self, a: Tx, perm: &[usize]) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.permuted(perm);
        self.push(v, Op::Permute(a, perm.to_vec()), t0)
    }

    /// Reshape (element count preserved).
    pub fn reshape(&mut self, a: Tx, shape: &[usize]) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.reshaped(shape);
        self.push(v, Op::Reshape(a), t0)
    }

    /// Concatenate along the last axis.
    pub fn concat_last(&mut self, parts: &[Tx]) -> Tx {
        let t0 = st_obs::op_start();
        let arrays: Vec<&NdArray> = parts.iter().map(|t| &self.nodes[t.0].value).collect();
        let v = NdArray::concat_last(&arrays);
        self.push(v, Op::ConcatLast(parts.to_vec()), t0)
    }

    /// Slice `[start, start+len)` of the last axis.
    pub fn slice_last(&mut self, a: Tx, start: usize, len: usize) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.slice_last(start, len);
        self.push(v, Op::SliceLast { x: a, start, len }, t0)
    }

    // ------------------------------------------------------------------
    // Nonlinearities
    // ------------------------------------------------------------------

    /// Softmax over the last axis.
    pub fn softmax_last(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.softmax_last();
        self.push(v, Op::SoftmaxLast(a), t0)
    }

    /// Rectified linear unit.
    pub fn relu(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a), t0)
    }

    /// Leaky ReLU with the given negative slope.
    pub fn leaky_relu(&mut self, a: Tx, slope: f32) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.map(|x| if x > 0.0 { x } else { slope * x });
        self.push(v, Op::LeakyRelu(a, slope), t0)
    }

    /// Logistic sigmoid.
    pub fn sigmoid(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.map(sigmoid_f);
        self.push(v, Op::Sigmoid(a), t0)
    }

    /// Hyperbolic tangent.
    pub fn tanh(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.map(|x| x.tanh());
        self.push(v, Op::Tanh(a), t0)
    }

    /// SiLU / swish: `x * sigmoid(x)`.
    pub fn silu(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.map(|x| x * sigmoid_f(x));
        self.push(v, Op::Silu(a), t0)
    }

    /// Numerically stable softplus `log(1 + exp(x))` (used by the
    /// binary-cross-entropy-from-logits losses of the GAN baselines).
    pub fn softplus(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = self.nodes[a.0].value.map(softplus_f);
        self.push(v, Op::Softplus(a), t0)
    }

    /// Layer normalisation over the last axis with learnable gain and bias.
    pub fn layer_norm(&mut self, x: Tx, gain: Tx, bias: Tx, eps: f32) -> Tx {
        let t0 = st_obs::op_start();
        let xv = &self.nodes[x.0].value;
        let d = *xv.shape().last().expect("layer_norm needs rank >= 1");
        assert_eq!(self.nodes[gain.0].value.shape(), &[d], "layer_norm gain shape");
        assert_eq!(self.nodes[bias.0].value.shape(), &[d], "layer_norm bias shape");
        let rows = xv.numel() / d;
        let gv = self.nodes[gain.0].value.data();
        let bv = self.nodes[bias.0].value.data();
        // dirty: the normalise pass writes every element, reading straight
        // from the input rows (no working copy). The mean/var sums stay the
        // sequential folds the repo's reduction contract pins.
        let mut data = crate::pool::dirty(rows * d);
        for (srow, drow) in xv.data().chunks_exact(d).zip(data.chunks_exact_mut(d)) {
            let mean = srow.iter().sum::<f32>() / d as f32;
            let var = srow.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv = 1.0 / (var + eps).sqrt();
            for (((dv, &sv), &gj), &bj) in drow.iter_mut().zip(srow).zip(gv).zip(bv) {
                *dv = gj * (sv - mean) * inv + bj;
            }
        }
        let out = NdArray::from_parts(xv.shape().to_vec(), data);
        self.push(out, Op::LayerNorm { x, gain, bias, eps }, t0)
    }

    /// Inverted dropout: identity in eval mode; in train mode zeroes with
    /// probability `p` and scales survivors by `1/(1-p)`.
    pub fn dropout<R: Rng + ?Sized>(&mut self, x: Tx, p: f32, rng: &mut R) -> Tx {
        if !self.train || p <= 0.0 {
            return x;
        }
        let t0 = st_obs::op_start();
        assert!(p < 1.0, "dropout probability must be < 1");
        let keep = 1.0 - p;
        let scale = 1.0 / keep;
        let shape = self.nodes[x.0].value.shape().to_vec();
        let mask_data: Vec<f32> =
            (0..self.nodes[x.0].value.numel()).map(|_| if rng.random::<f32>() < keep { scale } else { 0.0 }).collect();
        let mask = NdArray::from_vec(&shape, mask_data);
        let v = self.nodes[x.0].value.mul(&mask);
        self.push(v, Op::Dropout { x, mask }, t0)
    }

    // ------------------------------------------------------------------
    // Reductions and losses
    // ------------------------------------------------------------------

    /// Sum of all elements (scalar result, shape `[1]`).
    pub fn sum_all(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = NdArray::scalar(self.nodes[a.0].value.sum() as f32);
        self.push(v, Op::SumAll(a), t0)
    }

    /// Mean of all elements (scalar result, shape `[1]`).
    pub fn mean_all(&mut self, a: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let v = NdArray::scalar(self.nodes[a.0].value.mean() as f32);
        self.push(v, Op::MeanAll(a), t0)
    }

    /// Masked mean-squared error: `sum(mask*(pred-target)^2) / max(sum(mask), 1)`.
    ///
    /// Gradient flows only into `pred`.
    pub fn mse_masked(&mut self, pred: Tx, target: Tx, mask: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let p = &self.nodes[pred.0].value;
        let t = &self.nodes[target.0].value;
        let m = &self.nodes[mask.0].value;
        assert_eq!(p.shape(), t.shape(), "mse_masked pred/target shapes");
        assert_eq!(p.shape(), m.shape(), "mse_masked pred/mask shapes");
        let denom = m.sum().max(1.0);
        let mut acc = 0.0f64;
        for ((&pv, &tv), &mv) in p.data().iter().zip(t.data()).zip(m.data()) {
            let d = (pv - tv) as f64;
            acc += mv as f64 * d * d;
        }
        let v = NdArray::scalar((acc / denom) as f32);
        self.push(v, Op::MseMasked { pred, target, mask }, t0)
    }

    /// Masked mean-absolute error: `sum(mask*|pred-target|) / max(sum(mask), 1)`.
    ///
    /// Gradient (subgradient at 0) flows only into `pred`.
    pub fn mae_masked(&mut self, pred: Tx, target: Tx, mask: Tx) -> Tx {
        let t0 = st_obs::op_start();
        let p = &self.nodes[pred.0].value;
        let t = &self.nodes[target.0].value;
        let m = &self.nodes[mask.0].value;
        assert_eq!(p.shape(), t.shape(), "mae_masked pred/target shapes");
        assert_eq!(p.shape(), m.shape(), "mae_masked pred/mask shapes");
        let denom = m.sum().max(1.0);
        let mut acc = 0.0f64;
        for ((&pv, &tv), &mv) in p.data().iter().zip(t.data()).zip(m.data()) {
            acc += mv as f64 * (pv - tv).abs() as f64;
        }
        let v = NdArray::scalar((acc / denom) as f32);
        self.push(v, Op::MaeMasked { pred, target, mask }, t0)
    }

    /// Causal dilated 1-D convolution along the middle (time) axis.
    ///
    /// `x [B, L, Cin]`, `w [K, Cin, Cout]`, `b [Cout]`; the output at time `l`
    /// sees inputs `l, l-dilation, ..., l-(K-1)*dilation` (zero-padded left).
    pub fn conv1d_causal(&mut self, x: Tx, w: Tx, b: Tx, dilation: usize) -> Tx {
        let t0 = st_obs::op_start();
        let xv = &self.nodes[x.0].value;
        let wv = &self.nodes[w.0].value;
        let bv = &self.nodes[b.0].value;
        assert_eq!(xv.ndim(), 3, "conv1d input must be [B,L,Cin]");
        assert_eq!(wv.ndim(), 3, "conv1d weight must be [K,Cin,Cout]");
        let (bs, l, cin) = (xv.shape()[0], xv.shape()[1], xv.shape()[2]);
        let (k, cin2, cout) = (wv.shape()[0], wv.shape()[1], wv.shape()[2]);
        assert_eq!(cin, cin2, "conv1d channel mismatch");
        assert_eq!(bv.shape(), &[cout], "conv1d bias shape");
        let mut out = NdArray::zeros(&[bs, l, cout]);
        let xd = xv.data();
        let wd = wv.data();
        let bd = bv.data();
        let od = out.data_mut();
        // Batch-parallel: each batch writes only its own [l, cout] chunk.
        crate::ndarray::batch_dispatch("conv1d_fwd", od, l * cout, bs * l * k * cin * cout, |bi, chunk| {
            for t in 0..l {
                let orow = &mut chunk[t * cout..(t + 1) * cout];
                orow.copy_from_slice(bd);
                for ki in 0..k {
                    let Some(src) = t.checked_sub(ki * dilation) else { break };
                    let xrow = &xd[(bi * l + src) * cin..(bi * l + src + 1) * cin];
                    for (ci, &xval) in xrow.iter().enumerate() {
                        if xval == 0.0 {
                            continue;
                        }
                        let wrow = &wd[(ki * cin + ci) * cout..(ki * cin + ci + 1) * cout];
                        for (o, &wv_) in orow.iter_mut().zip(wrow) {
                            *o += xval * wv_;
                        }
                    }
                }
            }
        });
        self.push(out, Op::Conv1dCausal { x, w, b, dilation }, t0)
    }

    // ------------------------------------------------------------------
    // Backward
    // ------------------------------------------------------------------

    /// Run reverse-mode differentiation from scalar `loss`, returning
    /// gradients for every named parameter that influenced it.
    ///
    /// Takes `&mut self` because the walk frees each node's forward value
    /// as soon as its gradient rule has run (see [`crate::backward`]); the
    /// tape must not be read through [`Graph::value`] afterwards. Callers
    /// that need forward values (loss, predictions) read them first.
    pub fn backward(&mut self, loss: Tx) -> Gradients {
        assert_eq!(
            self.nodes[loss.0].value.numel(),
            1,
            "backward requires a scalar loss, got shape {:?}",
            self.nodes[loss.0].value.shape()
        );
        backprop(&mut self.nodes, loss)
    }
}

#[inline]
pub(crate) fn softplus_f(x: f32) -> f32 {
    if x > 20.0 {
        x
    } else if x < -20.0 {
        x.exp()
    } else {
        (1.0 + x.exp()).ln()
    }
}

#[inline]
pub(crate) fn sigmoid_f(x: f32) -> f32 {
    if x >= 0.0 {
        1.0 / (1.0 + (-x).exp())
    } else {
        let e = x.exp();
        e / (1.0 + e)
    }
}
