//! Runtime-dispatched SIMD microkernels for the dense hot path.
//!
//! Three tiers, selected once per process by [`active_tier`]:
//!
//! * [`Tier::Avx2`] — explicit 256-bit register tiles for the matmul
//!   kernels and 8-wide element-wise loops (`_mm256_mul_ps` +
//!   `_mm256_add_ps`; **never FMA**, whose single rounding would change
//!   bits vs the scalar reference).
//! * [`Tier::Sse2`] — explicit 128-bit element-wise and reduction loops;
//!   matmul runs the scalar-structured tiles (whose fixed-width inner loops
//!   the compiler already auto-vectorizes at the x86-64 SSE2 baseline).
//! * [`Tier::Scalar`] — pure scalar loops; the escape hatch (`ST_SIMD=0`)
//!   and the reference the other tiers are pinned against.
//!
//! ## Bitwise contract
//!
//! Every tier computes **bit-identical** results (pinned by
//! `tests/simd_equivalence.rs`):
//!
//! * Element-wise kernels apply the same IEEE op per element — lane width
//!   is invisible in the result.
//! * Matmul tiles keep the repo-wide accumulation contract: each output
//!   element is a single f32 accumulator summed over ascending `p` from
//!   +0.0. Vectorizing across *columns* (independent accumulators) cannot
//!   reorder any element's sum; FMA is banned because contracting
//!   `mul+add` into one rounding would.
//! * Reductions ([`row_sum_at`] / [`row_max_at`]) keep the fixed 4-lane
//!   tree (lane `i` covers positions `i, i+4, …`; lanes fold as
//!   `(l0+l1)+(l2+l3)`; remainder in order) — so the SSE2 path stays
//!   4 lanes wide even under the AVX2 tier, and the fold is performed in
//!   the identical association.
//!
//! Storage from [`crate::pool`] is 32-byte aligned, so whole-buffer loops
//! start on vector-aligned bases; kernels still use unaligned loads
//! (`loadu`/`storeu`) because row/tile sub-slices carry arbitrary offsets —
//! on every AVX2-era core `loadu` on an aligned address runs at aligned
//! speed, so alignment buys the fast path without an alignment precondition.

use std::sync::OnceLock;

/// SIMD dispatch tier (see module docs). Ordering is capability: a tier may
/// fall back to any lower tier's code path, never the reverse.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Tier {
    /// Pure scalar loops (the bitwise reference; forced by `ST_SIMD=0`).
    Scalar,
    /// Explicit 128-bit kernels (x86-64 baseline; forced by `ST_SIMD=sse2`).
    Sse2,
    /// Explicit 256-bit kernels (runtime-detected).
    Avx2,
}

fn detect() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::is_x86_feature_detected!("avx2") {
            return Tier::Avx2;
        }
        Tier::Sse2
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        Tier::Scalar
    }
}

/// The tier every kernel dispatches to, resolved once per process:
/// `ST_SIMD=0` forces [`Tier::Scalar`], `ST_SIMD=sse2` caps at
/// [`Tier::Sse2`], anything else (or unset) takes the best runtime-detected
/// tier. Tier choice never changes results — only which bit-identical
/// kernel computes them.
pub fn active_tier() -> Tier {
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(|| match std::env::var("ST_SIMD").ok().as_deref() {
        Some("0") => Tier::Scalar,
        Some("sse2") => detect().min(Tier::Sse2),
        _ => detect(),
    })
}

/// Register-tile sizes for the blocked kernels: an `MR x NR` block of output
/// accumulators stays in registers while the `p` loop streams both inputs
/// once. NR spans two AVX2 lanes; MR deepens reuse of each loaded b-row.
pub(crate) const MR: usize = 4;
pub(crate) const NR: usize = 16;

// ---------------------------------------------------------------------------
// Matmul kernels
// ---------------------------------------------------------------------------

/// Bitwise contract shared by all three kernels: every output element is
/// accumulated in a single f32 register as an ascending-`p` sum starting
/// from +0.0, then added to `out` once. That is exactly what a naive
/// single-accumulator loop computes, so the tiled kernels are bit-identical
/// to their naive references (pinned by `tests/kernel_equivalence.rs`) and
/// independent of tile shape, thread count, or SIMD tier. The kernels are
/// dense by design: an `a == 0.0` skip pays off only for mostly-zero lhs
/// inputs and costs a branch per element on the dense activations that
/// dominate this model, while blocking vectorization of the inner loop.
///
/// `out += a @ b` for row-major buffers, `a [m,k]`, `b [k,n]`, at the
/// process-wide [`active_tier`].
pub fn matmul_kernel(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    matmul_kernel_at(active_tier(), out, a, b, m, k, n);
}

/// `out = a @ b` (overwriting store) at the process-wide [`active_tier`].
///
/// Identical accumulation to [`matmul_kernel`]; only the final write
/// changes from `out[i] += acc` to `out[i] = acc`. On a `+0.0`-filled
/// output the two are bit-identical (`0.0 + acc == acc` for every `acc`
/// the ascending-`p` sum can produce from `+0.0`), so forward-path callers
/// use this on *uninitialised* pooled buffers and skip the zeroing sweep —
/// one full memory pass per matmul — without changing a single output bit.
pub fn matmul_kernel_set(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    matmul_kernel_set_at(active_tier(), out, a, b, m, k, n);
}

/// [`matmul_kernel`] at an explicit tier (exposed so equivalence tests can
/// compare tiers within one process).
pub fn matmul_kernel_at(
    tier: Tier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_kernel_impl::<true>(tier, out, a, b, m, k, n);
}

/// [`matmul_kernel_set`] at an explicit tier (for equivalence tests).
pub fn matmul_kernel_set_at(
    tier: Tier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_kernel_impl::<false>(tier, out, a, b, m, k, n);
}

fn matmul_kernel_impl<const ACC: bool>(
    tier: Tier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    let mut i = 0;
    while i + MR <= m {
        let mut j = 0;
        while j + NR <= n {
            #[cfg(target_arch = "x86_64")]
            if tier == Tier::Avx2 {
                // SAFETY: AVX2 presence is what put us on this tier.
                unsafe { mm_tile_4x16_avx2::<ACC>(out, a, b, k, n, i, j) };
                j += NR;
                continue;
            }
            mm_tile_4x16_scalar::<ACC>(out, a, b, k, n, i, j);
            j += NR;
        }
        if j < n {
            mm_edge::<ACC>(tier, out, a, b, k, n, i, MR, j, n - j);
        }
        i += MR;
    }
    if i < m {
        let mut j = 0;
        while j < n {
            let jw = NR.min(n - j);
            mm_edge::<ACC>(tier, out, a, b, k, n, i, m - i, j, jw);
            j += jw;
        }
    }
}

/// Hot full tile of [`matmul_kernel`]: `MR x NR` accumulators, outer
/// product over `p` (scalar-structured; fixed trip counts auto-vectorize at
/// the SSE2 baseline).
#[inline]
fn mm_tile_4x16_scalar<const ACC: bool>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    i: usize,
    j: usize,
) {
    let mut acc = [[0.0f32; NR]; MR];
    for p in 0..k {
        let brow = &b[p * n + j..p * n + j + NR];
        for r in 0..MR {
            let av = a[(i + r) * k + p];
            for c in 0..NR {
                acc[r][c] += av * brow[c];
            }
        }
    }
    for r in 0..MR {
        let orow = &mut out[(i + r) * n + j..(i + r) * n + j + NR];
        for c in 0..NR {
            if ACC {
                orow[c] += acc[r][c];
            } else {
                orow[c] = acc[r][c];
            }
        }
    }
}

/// AVX2 full tile: 4 rows x two `__m256` column strips = 8 accumulator
/// registers; each b-row is loaded once and reused across all four rows.
/// Identical per-element op sequence to [`mm_tile_4x16_scalar`]
/// (broadcast-mul then add, ascending `p`), hence bit-identical.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn mm_tile_4x16_avx2<const ACC: bool>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    i: usize,
    j: usize,
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for p in 0..k {
        let bp = b.as_ptr().add(p * n + j);
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for r in 0..MR {
            let av = _mm256_set1_ps(*a.get_unchecked((i + r) * k + p));
            acc[r][0] = _mm256_add_ps(acc[r][0], _mm256_mul_ps(av, b0));
            acc[r][1] = _mm256_add_ps(acc[r][1], _mm256_mul_ps(av, b1));
        }
    }
    for r in 0..MR {
        let op = out.as_mut_ptr().add((i + r) * n + j);
        if ACC {
            _mm256_storeu_ps(op, _mm256_add_ps(_mm256_loadu_ps(op), acc[r][0]));
            _mm256_storeu_ps(op.add(8), _mm256_add_ps(_mm256_loadu_ps(op.add(8)), acc[r][1]));
        } else {
            _mm256_storeu_ps(op, acc[r][0]);
            _mm256_storeu_ps(op.add(8), acc[r][1]);
        }
    }
}

/// Edge tile: `mr x jw` block at `(i0, j0)`, same per-element accumulation
/// order as the full tile. The common widths the attention/MPNN shapes hit
/// (head dim 4, virtual-node dim 8, 24 % NR = 8, 12) dispatch to a
/// monomorphized fixed-width strip so the inner loop fully unrolls and the
/// accumulators stay in registers; odd widths take the runtime-width strip.
#[allow(clippy::too_many_arguments)] // raw kernel: all six dims are load-bearing
fn mm_edge<const ACC: bool>(
    tier: Tier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    i0: usize,
    mr: usize,
    j0: usize,
    jw: usize,
) {
    debug_assert!(jw <= NR);
    #[cfg(target_arch = "x86_64")]
    if tier == Tier::Avx2 {
        // SAFETY: AVX2 presence is what put us on this tier.
        unsafe {
            match jw {
                4 => return mm_edge_avx2::<0, true, ACC>(out, a, b, k, n, i0, mr, j0),
                8 => return mm_edge_avx2::<1, false, ACC>(out, a, b, k, n, i0, mr, j0),
                12 => return mm_edge_avx2::<1, true, ACC>(out, a, b, k, n, i0, mr, j0),
                16 => return mm_edge_avx2::<2, false, ACC>(out, a, b, k, n, i0, mr, j0),
                _ => {}
            }
        }
    }
    let _ = tier;
    match jw {
        4 => mm_edge_fixed::<4, ACC>(out, a, b, k, n, i0, mr, j0),
        8 => mm_edge_fixed::<8, ACC>(out, a, b, k, n, i0, mr, j0),
        12 => mm_edge_fixed::<12, ACC>(out, a, b, k, n, i0, mr, j0),
        16 => mm_edge_fixed::<16, ACC>(out, a, b, k, n, i0, mr, j0),
        _ => {
            for r in 0..mr {
                let mut acc = [0.0f32; NR];
                let arow = &a[(i0 + r) * k..(i0 + r) * k + k];
                for (p, &av) in arow.iter().enumerate() {
                    let brow = &b[p * n + j0..p * n + j0 + jw];
                    for c in 0..jw {
                        acc[c] += av * brow[c];
                    }
                }
                let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + jw];
                for c in 0..jw {
                    if ACC {
                        orow[c] += acc[c];
                    } else {
                        orow[c] = acc[c];
                    }
                }
            }
        }
    }
}

/// Fixed-width edge strip: identical accumulation order to the runtime-width
/// strip above, with `JW` known at compile time.
#[allow(clippy::too_many_arguments)] // raw kernel: all six dims are load-bearing
fn mm_edge_fixed<const JW: usize, const ACC: bool>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    i0: usize,
    mr: usize,
    j0: usize,
) {
    // Two output rows per pass reuse each loaded b-row once more; the pair of
    // accumulator strips still fits in registers for every JW used here.
    let mut r = 0;
    while r + 2 <= mr {
        let mut acc0 = [0.0f32; JW];
        let mut acc1 = [0.0f32; JW];
        let a0 = &a[(i0 + r) * k..(i0 + r) * k + k];
        let a1 = &a[(i0 + r + 1) * k..(i0 + r + 1) * k + k];
        for p in 0..k {
            let brow = &b[p * n + j0..p * n + j0 + JW];
            let (av0, av1) = (a0[p], a1[p]);
            for c in 0..JW {
                acc0[c] += av0 * brow[c];
                acc1[c] += av1 * brow[c];
            }
        }
        let o0 = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + JW];
        for c in 0..JW {
            if ACC {
                o0[c] += acc0[c];
            } else {
                o0[c] = acc0[c];
            }
        }
        let o1 = &mut out[(i0 + r + 1) * n + j0..(i0 + r + 1) * n + j0 + JW];
        for c in 0..JW {
            if ACC {
                o1[c] += acc1[c];
            } else {
                o1[c] = acc1[c];
            }
        }
        r += 2;
    }
    if r < mr {
        let mut acc = [0.0f32; JW];
        let arow = &a[(i0 + r) * k..(i0 + r) * k + k];
        for (p, &av) in arow.iter().enumerate() {
            let brow = &b[p * n + j0..p * n + j0 + JW];
            for c in 0..JW {
                acc[c] += av * brow[c];
            }
        }
        let orow = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + JW];
        for c in 0..JW {
            if ACC {
                orow[c] += acc[c];
            } else {
                orow[c] = acc[c];
            }
        }
    }
}

/// AVX2 fixed-width edge strip covering `JW = 8*V8 + 4*(HAS4 as usize)`
/// (so `<0,true>` = 4, `<1,false>` = 8, `<1,true>` = 12, `<2,false>` = 16).
/// Mirrors [`mm_edge_fixed`]: two rows per pass, single-row tail, identical
/// per-element accumulation order.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)] // raw kernel: all six dims are load-bearing
#[target_feature(enable = "avx2")]
unsafe fn mm_edge_avx2<const V8: usize, const HAS4: bool, const ACC: bool>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    k: usize,
    n: usize,
    i0: usize,
    mr: usize,
    j0: usize,
) {
    use std::arch::x86_64::*;
    let mut r = 0;
    while r + 2 <= mr {
        let mut acc0 = [_mm256_setzero_ps(); V8];
        let mut acc1 = [_mm256_setzero_ps(); V8];
        let mut t0 = _mm_setzero_ps();
        let mut t1 = _mm_setzero_ps();
        for p in 0..k {
            let bp = b.as_ptr().add(p * n + j0);
            let av0 = _mm256_set1_ps(*a.get_unchecked((i0 + r) * k + p));
            let av1 = _mm256_set1_ps(*a.get_unchecked((i0 + r + 1) * k + p));
            for s in 0..V8 {
                let bv = _mm256_loadu_ps(bp.add(8 * s));
                acc0[s] = _mm256_add_ps(acc0[s], _mm256_mul_ps(av0, bv));
                acc1[s] = _mm256_add_ps(acc1[s], _mm256_mul_ps(av1, bv));
            }
            if HAS4 {
                let bv = _mm_loadu_ps(bp.add(8 * V8));
                t0 = _mm_add_ps(t0, _mm_mul_ps(_mm256_castps256_ps128(av0), bv));
                t1 = _mm_add_ps(t1, _mm_mul_ps(_mm256_castps256_ps128(av1), bv));
            }
        }
        let o0 = out.as_mut_ptr().add((i0 + r) * n + j0);
        let o1 = out.as_mut_ptr().add((i0 + r + 1) * n + j0);
        for s in 0..V8 {
            if ACC {
                acc0[s] = _mm256_add_ps(_mm256_loadu_ps(o0.add(8 * s)), acc0[s]);
                acc1[s] = _mm256_add_ps(_mm256_loadu_ps(o1.add(8 * s)), acc1[s]);
            }
            _mm256_storeu_ps(o0.add(8 * s), acc0[s]);
            _mm256_storeu_ps(o1.add(8 * s), acc1[s]);
        }
        if HAS4 {
            if ACC {
                t0 = _mm_add_ps(_mm_loadu_ps(o0.add(8 * V8)), t0);
                t1 = _mm_add_ps(_mm_loadu_ps(o1.add(8 * V8)), t1);
            }
            _mm_storeu_ps(o0.add(8 * V8), t0);
            _mm_storeu_ps(o1.add(8 * V8), t1);
        }
        r += 2;
    }
    if r < mr {
        let mut acc = [_mm256_setzero_ps(); V8];
        let mut t = _mm_setzero_ps();
        for p in 0..k {
            let bp = b.as_ptr().add(p * n + j0);
            let av = _mm256_set1_ps(*a.get_unchecked((i0 + r) * k + p));
            for s in 0..V8 {
                let bv = _mm256_loadu_ps(bp.add(8 * s));
                acc[s] = _mm256_add_ps(acc[s], _mm256_mul_ps(av, bv));
            }
            if HAS4 {
                let bv = _mm_loadu_ps(bp.add(8 * V8));
                t = _mm_add_ps(t, _mm_mul_ps(_mm256_castps256_ps128(av), bv));
            }
        }
        let o = out.as_mut_ptr().add((i0 + r) * n + j0);
        for s in 0..V8 {
            if ACC {
                acc[s] = _mm256_add_ps(_mm256_loadu_ps(o.add(8 * s)), acc[s]);
            }
            _mm256_storeu_ps(o.add(8 * s), acc[s]);
        }
        if HAS4 {
            if ACC {
                t = _mm_add_ps(_mm_loadu_ps(o.add(8 * V8)), t);
            }
            _mm_storeu_ps(o.add(8 * V8), t);
        }
    }
}

/// `out += a @ b^T` where `a [m,k]`, `b [n,k]`, at the process-wide
/// [`active_tier`].
///
/// `b` is transposed into a scratch panel and the block runs through
/// [`matmul_kernel_at`]: identical products in the identical ascending-`p`
/// order, so the result is bit-for-bit the same as dotting b's rows
/// directly — and the one transpose (amortized over all `m` output rows)
/// buys the column-contiguous access the register tiles want. Small panels
/// (the per-head attention case, run once per batch element) use stack
/// scratch; larger ones borrow a pooled buffer.
pub fn matmul_transb_kernel(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    matmul_transb_kernel_at(active_tier(), out, a, b, m, k, n);
}

/// `out = a @ b^T` (overwriting store — see [`matmul_kernel_set`]) at the
/// process-wide [`active_tier`].
pub fn matmul_transb_kernel_set(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_transb_kernel_impl::<false>(active_tier(), out, a, b, m, k, n);
}

/// [`matmul_transb_kernel`] at an explicit tier (for equivalence tests).
pub fn matmul_transb_kernel_at(
    tier: Tier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_transb_kernel_impl::<true>(tier, out, a, b, m, k, n);
}

fn matmul_transb_kernel_impl<const ACC: bool>(
    tier: Tier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    // 128 floats covers the per-head attention panels (k*n = 96 and 32) that
    // run once per batch element; keeping the array small keeps the implicit
    // zero-fill off the profile for those hot sub-tile calls.
    let mut stack = [0.0f32; 128];
    let mut heap: Option<crate::pool::AVec> = None;
    let bt: &mut [f32] = if k * n <= stack.len() {
        &mut stack[..k * n]
    } else {
        heap.insert(crate::pool::dirty(k * n))
    };
    for j in 0..n {
        for p in 0..k {
            bt[p * n + j] = b[j * k + p];
        }
    }
    matmul_kernel_impl::<ACC>(tier, out, a, bt, m, k, n);
    if let Some(h) = heap {
        // Hand the scratch back to the pool (AVec's own Drop would free it).
        crate::pool::give(h);
    }
}

/// `out += a^T @ b` where `a [k,m]`, `b [k,n]`: same outer-product tiling as
/// [`matmul_kernel`] with the lhs read at stride `m`. Runs at the
/// process-wide [`active_tier`].
pub fn matmul_transa_kernel(out: &mut [f32], a: &[f32], b: &[f32], m: usize, k: usize, n: usize) {
    matmul_transa_kernel_at(active_tier(), out, a, b, m, k, n);
}

/// `out = a^T @ b` (overwriting store — see [`matmul_kernel_set`]) at the
/// process-wide [`active_tier`].
pub fn matmul_transa_kernel_set(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_transa_kernel_impl::<false>(active_tier(), out, a, b, m, k, n);
}

/// [`matmul_transa_kernel`] at an explicit tier (for equivalence tests).
pub fn matmul_transa_kernel_at(
    tier: Tier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    matmul_transa_kernel_impl::<true>(tier, out, a, b, m, k, n);
}

fn matmul_transa_kernel_impl<const ACC: bool>(
    tier: Tier,
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
) {
    debug_assert_eq!(out.len(), m * n);
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    let mut i = 0;
    while i < m {
        let mr = MR.min(m - i);
        let mut j = 0;
        while j < n {
            let jw = NR.min(n - j);
            #[cfg(target_arch = "x86_64")]
            if tier == Tier::Avx2 && jw == NR {
                // SAFETY: AVX2 presence is what put us on this tier.
                unsafe { mm_tile_transa_avx2::<ACC>(out, a, b, m, k, n, i, mr, j) };
                j += jw;
                continue;
            }
            let _ = tier;
            let mut acc = [[0.0f32; NR]; MR];
            for p in 0..k {
                let brow = &b[p * n + j..p * n + j + jw];
                for r in 0..mr {
                    let av = a[p * m + i + r];
                    for c in 0..jw {
                        acc[r][c] += av * brow[c];
                    }
                }
            }
            for r in 0..mr {
                let orow = &mut out[(i + r) * n + j..(i + r) * n + j + jw];
                for c in 0..jw {
                    if ACC {
                        orow[c] += acc[r][c];
                    } else {
                        orow[c] = acc[r][c];
                    }
                }
            }
            j += jw;
        }
        i += mr;
    }
}

/// AVX2 transposed-lhs tile: full NR-wide strip, `mr <= MR` rows, lhs read
/// at stride `m`. Same per-element accumulation order as the scalar tile.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)] // raw kernel: all dims are load-bearing
#[target_feature(enable = "avx2")]
unsafe fn mm_tile_transa_avx2<const ACC: bool>(
    out: &mut [f32],
    a: &[f32],
    b: &[f32],
    m: usize,
    k: usize,
    n: usize,
    i: usize,
    mr: usize,
    j: usize,
) {
    use std::arch::x86_64::*;
    let mut acc = [[_mm256_setzero_ps(); 2]; MR];
    for p in 0..k {
        let bp = b.as_ptr().add(p * n + j);
        let b0 = _mm256_loadu_ps(bp);
        let b1 = _mm256_loadu_ps(bp.add(8));
        for (r, accr) in acc.iter_mut().enumerate().take(mr) {
            let av = _mm256_set1_ps(*a.get_unchecked(p * m + i + r));
            accr[0] = _mm256_add_ps(accr[0], _mm256_mul_ps(av, b0));
            accr[1] = _mm256_add_ps(accr[1], _mm256_mul_ps(av, b1));
        }
    }
    for (r, accr) in acc.iter().enumerate().take(mr) {
        let op = out.as_mut_ptr().add((i + r) * n + j);
        if ACC {
            _mm256_storeu_ps(op, _mm256_add_ps(_mm256_loadu_ps(op), accr[0]));
            _mm256_storeu_ps(op.add(8), _mm256_add_ps(_mm256_loadu_ps(op.add(8)), accr[1]));
        } else {
            _mm256_storeu_ps(op, accr[0]);
            _mm256_storeu_ps(op.add(8), accr[1]);
        }
    }
}

// ---------------------------------------------------------------------------
// Element-wise kernels
// ---------------------------------------------------------------------------

/// Element-wise binary op vectorized by [`binary_at`] and friends. Each
/// lane applies one IEEE op, so every tier is trivially bit-identical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// `a + b`
    Add,
    /// `a - b`
    Sub,
    /// `a * b`
    Mul,
}

impl BinOp {
    /// Apply the op to one element pair (the scalar reference all vector
    /// paths are pinned against).
    #[inline(always)]
    pub fn apply(self, a: f32, b: f32) -> f32 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
        }
    }
}

/// `out[i] = a[i] op b[i]` at the process-wide [`active_tier`].
pub fn binary(op: BinOp, out: &mut [f32], a: &[f32], b: &[f32]) {
    binary_at(active_tier(), op, out, a, b);
}

/// [`binary`] at an explicit tier (for equivalence tests).
pub fn binary_at(tier: Tier, op: BinOp, out: &mut [f32], a: &[f32], b: &[f32]) {
    assert_eq!(out.len(), a.len());
    assert_eq!(out.len(), b.len());
    #[cfg(target_arch = "x86_64")]
    match tier {
        // SAFETY: AVX2 presence is what put us on this tier.
        Tier::Avx2 => return unsafe { binary_avx2(op, out, a, b) },
        Tier::Sse2 => return binary_sse2(op, out, a, b),
        Tier::Scalar => {}
    }
    let _ = tier;
    for i in 0..out.len() {
        out[i] = op.apply(a[i], b[i]);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn binary_avx2(op: BinOp, out: &mut [f32], a: &[f32], b: &[f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut i = 0;
    while i + 8 <= n {
        let av = _mm256_loadu_ps(a.as_ptr().add(i));
        let bv = _mm256_loadu_ps(b.as_ptr().add(i));
        let r = match op {
            BinOp::Add => _mm256_add_ps(av, bv),
            BinOp::Sub => _mm256_sub_ps(av, bv),
            BinOp::Mul => _mm256_mul_ps(av, bv),
        };
        _mm256_storeu_ps(out.as_mut_ptr().add(i), r);
        i += 8;
    }
    while i < n {
        out[i] = op.apply(a[i], b[i]);
        i += 1;
    }
}

#[cfg(target_arch = "x86_64")]
fn binary_sse2(op: BinOp, out: &mut [f32], a: &[f32], b: &[f32]) {
    use std::arch::x86_64::*;
    let n = out.len();
    let mut i = 0;
    while i + 4 <= n {
        // SAFETY: SSE2 is the x86-64 baseline; bounds hold by the loop guard.
        unsafe {
            let av = _mm_loadu_ps(a.as_ptr().add(i));
            let bv = _mm_loadu_ps(b.as_ptr().add(i));
            let r = match op {
                BinOp::Add => _mm_add_ps(av, bv),
                BinOp::Sub => _mm_sub_ps(av, bv),
                BinOp::Mul => _mm_mul_ps(av, bv),
            };
            _mm_storeu_ps(out.as_mut_ptr().add(i), r);
        }
        i += 4;
    }
    while i < n {
        out[i] = op.apply(a[i], b[i]);
        i += 1;
    }
}

/// `out[i] = a[i] op s` (or `s op a[i]` when `scalar_left`), at the
/// process-wide [`active_tier`].
pub fn binary_scalar(op: BinOp, out: &mut [f32], a: &[f32], s: f32, scalar_left: bool) {
    binary_scalar_at(active_tier(), op, out, a, s, scalar_left);
}

/// [`binary_scalar`] at an explicit tier (for equivalence tests).
pub fn binary_scalar_at(tier: Tier, op: BinOp, out: &mut [f32], a: &[f32], s: f32, scalar_left: bool) {
    assert_eq!(out.len(), a.len());
    #[cfg(target_arch = "x86_64")]
    match tier {
        // SAFETY: AVX2 presence is what put us on this tier.
        Tier::Avx2 => return unsafe { binary_scalar_avx2(op, out, a, s, scalar_left) },
        Tier::Sse2 | Tier::Scalar => {}
    }
    let _ = tier;
    // The scalar loop is shape (x op const): trivially auto-vectorized at
    // the SSE2 baseline, so no explicit 128-bit variant is needed.
    if scalar_left {
        for (o, &x) in out.iter_mut().zip(a) {
            *o = op.apply(s, x);
        }
    } else {
        for (o, &x) in out.iter_mut().zip(a) {
            *o = op.apply(x, s);
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn binary_scalar_avx2(op: BinOp, out: &mut [f32], a: &[f32], s: f32, scalar_left: bool) {
    use std::arch::x86_64::*;
    let n = out.len();
    let sv = _mm256_set1_ps(s);
    let mut i = 0;
    while i + 8 <= n {
        let av = _mm256_loadu_ps(a.as_ptr().add(i));
        let (l, r) = if scalar_left { (sv, av) } else { (av, sv) };
        let y = match op {
            BinOp::Add => _mm256_add_ps(l, r),
            BinOp::Sub => _mm256_sub_ps(l, r),
            BinOp::Mul => _mm256_mul_ps(l, r),
        };
        _mm256_storeu_ps(out.as_mut_ptr().add(i), y);
        i += 8;
    }
    while i < n {
        out[i] = if scalar_left { op.apply(s, a[i]) } else { op.apply(a[i], s) };
        i += 1;
    }
}

/// `dst[i] += scale * src[i]` (two roundings: mul then add — matching the
/// scalar expression, never FMA), at the process-wide [`active_tier`].
pub fn axpy(dst: &mut [f32], scale: f32, src: &[f32]) {
    axpy_at(active_tier(), dst, scale, src);
}

/// [`axpy`] at an explicit tier (for equivalence tests).
pub fn axpy_at(tier: Tier, dst: &mut [f32], scale: f32, src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if tier == Tier::Avx2 {
        // SAFETY: AVX2 presence is what put us on this tier.
        return unsafe { axpy_avx2(dst, scale, src) };
    }
    let _ = tier;
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += scale * s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn axpy_avx2(dst: &mut [f32], scale: f32, src: &[f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let sv = _mm256_set1_ps(scale);
    let mut i = 0;
    while i + 8 <= n {
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, _mm256_mul_ps(sv, s)));
        i += 8;
    }
    while i < n {
        dst[i] += scale * src[i];
        i += 1;
    }
}

/// `dst[i] += src[i]` in place (bias rows fused onto matmul outputs), at
/// the process-wide [`active_tier`].
pub fn add_inplace(dst: &mut [f32], src: &[f32]) {
    add_inplace_at(active_tier(), dst, src);
}

/// [`add_inplace`] at an explicit tier (for equivalence tests).
pub fn add_inplace_at(tier: Tier, dst: &mut [f32], src: &[f32]) {
    assert_eq!(dst.len(), src.len());
    #[cfg(target_arch = "x86_64")]
    if tier == Tier::Avx2 {
        // SAFETY: AVX2 presence is what put us on this tier.
        return unsafe { add_inplace_avx2(dst, src) };
    }
    let _ = tier;
    // Plain `x + y` accumulate: auto-vectorized at the SSE2 baseline.
    for (d, &s) in dst.iter_mut().zip(src) {
        *d += s;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn add_inplace_avx2(dst: &mut [f32], src: &[f32]) {
    use std::arch::x86_64::*;
    let n = dst.len();
    let mut i = 0;
    while i + 8 <= n {
        let d = _mm256_loadu_ps(dst.as_ptr().add(i));
        let s = _mm256_loadu_ps(src.as_ptr().add(i));
        _mm256_storeu_ps(dst.as_mut_ptr().add(i), _mm256_add_ps(d, s));
        i += 8;
    }
    while i < n {
        dst[i] += src[i];
        i += 1;
    }
}

/// `d[i] = exp_nonpos(d[i] - mx)` in place (the softmax exp pass), at an
/// explicit tier.
///
/// The AVX2 lane replays [`crate::ndarray::exp_nonpos`] step for step —
/// same clamp, same magic-number range reduction, same polynomial nesting,
/// same integer exponent reconstruction — in 8-wide exact-rounding IEEE
/// ops, so every lane produces the scalar function's bits. (`_mm256_max_ps`
/// returns its second operand on NaN, matching `f32::max`'s NaN-ignoring
/// clamp.)
pub fn exp_sub_inplace_at(tier: Tier, d: &mut [f32], mx: f32) {
    #[cfg(target_arch = "x86_64")]
    if tier == Tier::Avx2 {
        // SAFETY: AVX2 presence is what put us on this tier.
        return unsafe { exp_sub_inplace_avx2(d, mx) };
    }
    let _ = tier;
    for v in d.iter_mut() {
        *v = crate::ndarray::exp_nonpos(*v - mx);
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
#[allow(clippy::excessive_precision)]
unsafe fn exp_sub_inplace_avx2(d: &mut [f32], mx: f32) {
    use std::arch::x86_64::*;
    let n = d.len();
    let mxv = _mm256_set1_ps(mx);
    let clamp = _mm256_set1_ps(-87.336_544);
    let log2e = _mm256_set1_ps(std::f32::consts::LOG2_E);
    let magic = _mm256_set1_ps(12_582_912.0); // 1.5 * 2^23
    let ln2_hi = _mm256_set1_ps(0.693_359_375);
    let ln2_lo = _mm256_set1_ps(-2.121_944_4e-4);
    let c5 = _mm256_set1_ps(1.987_569_1e-4);
    let c4 = _mm256_set1_ps(1.398_199_9e-3);
    let c3 = _mm256_set1_ps(8.333_452e-3);
    let c2 = _mm256_set1_ps(4.166_579_6e-2);
    let c1 = _mm256_set1_ps(1.666_666_5e-1);
    let c0 = _mm256_set1_ps(5.000_000_4e-1);
    let one = _mm256_set1_ps(1.0);
    let bias = _mm256_set1_epi32(127 - 0x4B40_0000);
    let mut i = 0;
    while i + 8 <= n {
        let x0 = _mm256_sub_ps(_mm256_loadu_ps(d.as_ptr().add(i)), mxv);
        let x = _mm256_max_ps(x0, clamp);
        let u = _mm256_add_ps(_mm256_mul_ps(x, log2e), magic);
        let nf = _mm256_sub_ps(u, magic);
        let r = _mm256_sub_ps(
            _mm256_sub_ps(x, _mm256_mul_ps(nf, ln2_hi)),
            _mm256_mul_ps(nf, ln2_lo),
        );
        // Same Horner nesting as the scalar polynomial, mul+add pairs only.
        let mut p = _mm256_add_ps(_mm256_mul_ps(c5, r), c4);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), c3);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), c2);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), c1);
        p = _mm256_add_ps(_mm256_mul_ps(p, r), c0);
        p = _mm256_add_ps(_mm256_add_ps(_mm256_mul_ps(_mm256_mul_ps(p, r), r), r), one);
        let npb = _mm256_add_epi32(_mm256_castps_si256(u), bias);
        let scale = _mm256_castsi256_ps(_mm256_slli_epi32(npb, 23));
        _mm256_storeu_ps(d.as_mut_ptr().add(i), _mm256_mul_ps(p, scale));
        i += 8;
    }
    while i < n {
        d[i] = crate::ndarray::exp_nonpos(d[i] - mx);
        i += 1;
    }
}

/// `row[i] *= c` in place (softmax normalization), at the process-wide
/// [`active_tier`].
pub fn scale_inplace(row: &mut [f32], c: f32) {
    scale_inplace_at(active_tier(), row, c);
}

/// [`scale_inplace`] at an explicit tier (for equivalence tests).
pub fn scale_inplace_at(tier: Tier, row: &mut [f32], c: f32) {
    #[cfg(target_arch = "x86_64")]
    if tier == Tier::Avx2 {
        // SAFETY: AVX2 presence is what put us on this tier.
        return unsafe { scale_inplace_avx2(row, c) };
    }
    let _ = tier;
    for v in row.iter_mut() {
        *v *= c;
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn scale_inplace_avx2(row: &mut [f32], c: f32) {
    use std::arch::x86_64::*;
    let n = row.len();
    let cv = _mm256_set1_ps(c);
    let mut i = 0;
    while i + 8 <= n {
        let v = _mm256_loadu_ps(row.as_ptr().add(i));
        _mm256_storeu_ps(row.as_mut_ptr().add(i), _mm256_mul_ps(v, cv));
        i += 8;
    }
    while i < n {
        row[i] *= c;
        i += 1;
    }
}

/// One softmax row behind a single tier dispatch: `row = exp_nonpos(row -
/// max(row))`, then normalise by `1.0 / sum(row)` — exactly the
/// [`row_max_at`] / [`exp_sub_inplace_at`] / [`row_sum_at`] /
/// [`scale_inplace_at`] sequence, fused. Attention softmaxes run ~10k short
/// rows per forward, and crossing multiple non-inlinable
/// `#[target_feature]` boundaries per row costs more than the row math
/// itself; on AVX2 the helpers inline into one kernel instead.
pub fn softmax_row_at(tier: Tier, row: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    if tier == Tier::Avx2 {
        // SAFETY: AVX2 presence is what put us on this tier.
        return unsafe { softmax_row_avx2(row) };
    }
    let mx = row_max_at(tier, row);
    exp_sub_inplace_at(tier, row, mx);
    let inv = 1.0 / row_sum_at(tier, row);
    scale_inplace_at(tier, row, inv);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2")]
unsafe fn softmax_row_avx2(row: &mut [f32]) {
    // The SSE2 reduction trees are plain fns, so they inline here; the two
    // AVX2 helpers inline because the caller carries the same target
    // feature. Same instructions as the unfused sequence, one call boundary.
    let mx = row_max_sse2(row);
    exp_sub_inplace_avx2(row, mx);
    let inv = 1.0 / row_sum_sse2(row);
    scale_inplace_avx2(row, inv);
}

// ---------------------------------------------------------------------------
// Row reductions (fixed 4-lane trees)
// ---------------------------------------------------------------------------

/// Max of a row via four independent lanes. Max is associative, so the
/// value matches a naive fold for any NaN-free input; for `-0.0`/`+0.0`
/// ties the chosen bit pattern may differ between a naive fold and this
/// one, but SIMD tiers fold the four lanes in the identical association as
/// the scalar 4-lane code, so tiers agree bitwise with each other. Runs at
/// the process-wide [`active_tier`].
#[inline]
pub fn row_max(row: &[f32]) -> f32 {
    row_max_at(active_tier(), row)
}

/// [`row_max`] at an explicit tier (for equivalence tests).
pub fn row_max_at(tier: Tier, row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if tier >= Tier::Sse2 {
        // The reduction tree is pinned at 4 lanes (SSE width): widening to 8
        // under AVX2 would change the lane-assignment of every element and
        // with it the fold order, breaking tier bit-equality.
        return row_max_sse2(row);
    }
    let _ = tier;
    row_max_scalar(row)
}

fn row_max_scalar(row: &[f32]) -> f32 {
    let mut lanes = [f32::NEG_INFINITY; 4];
    let mut it = row.chunks_exact(4);
    for ch in &mut it {
        for (l, &v) in lanes.iter_mut().zip(ch) {
            *l = l.max(v);
        }
    }
    let mut m = (lanes[0].max(lanes[1])).max(lanes[2].max(lanes[3]));
    for &v in it.remainder() {
        m = m.max(v);
    }
    m
}

#[cfg(target_arch = "x86_64")]
fn row_max_sse2(row: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = row.len();
    let full = n / 4 * 4;
    // SAFETY: SSE2 is the x86-64 baseline; bounds hold by construction.
    let mut lanes = [f32::NEG_INFINITY; 4];
    unsafe {
        let mut acc = _mm_set1_ps(f32::NEG_INFINITY);
        let mut i = 0;
        while i < full {
            // Inputs are NaN-free (softmax operands; non-finite values trip
            // the graph's debug asserts upstream), so `_mm_max_ps` and the
            // scalar `f32::max` agree on every lane except possibly the bit
            // pattern of ±0.0 ties — and every caller subtracts the max,
            // where both zeros act identically.
            acc = _mm_max_ps(acc, _mm_loadu_ps(row.as_ptr().add(i)));
            i += 4;
        }
        _mm_storeu_ps(lanes.as_mut_ptr(), acc);
    }
    let mut m = (lanes[0].max(lanes[1])).max(lanes[2].max(lanes[3]));
    for &v in &row[full..] {
        m = m.max(v);
    }
    m
}

/// Sum of a row in four fixed lanes: lane `i` accumulates positions
/// `i, i+4, ...` in ascending order, lanes fold as `(l0+l1)+(l2+l3)`, then
/// remainder elements add in order. A fixed function of the row length —
/// never of thread count or SIMD tier (the SSE2 kernel *is* the 4-lane
/// tree; AVX2 deliberately reuses it rather than widening to 8 lanes) — so
/// results are reproducible run-to-run. Runs at the process-wide
/// [`active_tier`].
#[inline]
pub fn row_sum(row: &[f32]) -> f32 {
    row_sum_at(active_tier(), row)
}

/// [`row_sum`] at an explicit tier (for equivalence tests).
pub fn row_sum_at(tier: Tier, row: &[f32]) -> f32 {
    #[cfg(target_arch = "x86_64")]
    if tier >= Tier::Sse2 {
        return row_sum_sse2(row);
    }
    let _ = tier;
    row_sum_scalar(row)
}

fn row_sum_scalar(row: &[f32]) -> f32 {
    let mut lanes = [0.0f32; 4];
    let mut it = row.chunks_exact(4);
    for ch in &mut it {
        for (l, &v) in lanes.iter_mut().zip(ch) {
            *l += v;
        }
    }
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for &v in it.remainder() {
        s += v;
    }
    s
}

#[cfg(target_arch = "x86_64")]
fn row_sum_sse2(row: &[f32]) -> f32 {
    use std::arch::x86_64::*;
    let n = row.len();
    let full = n / 4 * 4;
    let mut lanes = [0.0f32; 4];
    // SAFETY: SSE2 is the x86-64 baseline; bounds hold by construction.
    unsafe {
        let mut acc = _mm_setzero_ps();
        let mut i = 0;
        while i < full {
            acc = _mm_add_ps(acc, _mm_loadu_ps(row.as_ptr().add(i)));
            i += 4;
        }
        _mm_storeu_ps(lanes.as_mut_ptr(), acc);
    }
    // Fold in the exact scalar association: (l0+l1)+(l2+l3).
    let mut s = (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
    for &v in &row[full..] {
        s += v;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tier_order_reflects_capability() {
        assert!(Tier::Scalar < Tier::Sse2);
        assert!(Tier::Sse2 < Tier::Avx2);
    }

    #[test]
    fn active_tier_is_stable() {
        assert_eq!(active_tier(), active_tier());
    }

    #[test]
    fn binary_tiers_agree_on_odd_lengths() {
        let a: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        let b: Vec<f32> = (0..37).map(|i| (i as f32).cos()).collect();
        for op in [BinOp::Add, BinOp::Sub, BinOp::Mul] {
            let mut scalar = vec![0.0f32; 37];
            binary_at(Tier::Scalar, op, &mut scalar, &a, &b);
            for tier in [Tier::Sse2, Tier::Avx2] {
                if tier > detect() {
                    continue;
                }
                let mut out = vec![0.0f32; 37];
                binary_at(tier, op, &mut out, &a, &b);
                let eq = out.iter().zip(&scalar).all(|(x, y)| x.to_bits() == y.to_bits());
                assert!(eq, "{op:?} diverged at tier {tier:?}");
            }
        }
    }

    #[test]
    fn row_reductions_tiers_agree() {
        let row: Vec<f32> = (0..23).map(|i| ((i * 37 % 11) as f32) - 5.0).collect();
        for tier in [Tier::Sse2, Tier::Avx2] {
            if tier > detect() {
                continue;
            }
            assert_eq!(row_sum_at(tier, &row).to_bits(), row_sum_at(Tier::Scalar, &row).to_bits());
            assert_eq!(row_max_at(tier, &row).to_bits(), row_max_at(Tier::Scalar, &row).to_bits());
        }
    }
}
