//! Thread-local recycling pool for tensor storage.
//!
//! A model forward/backward pass allocates hundreds of output buffers per
//! step, most of them hundreds of kilobytes — past glibc's mmap threshold.
//! Served straight from the OS, every one of those costs an mmap/munmap pair
//! plus a page fault per touched page, which measures as ~40% of the whole
//! noise-predictor forward on this codebase. Recycling buffers through a
//! thread-local free list turns that churn into cache-warm reuse with no
//! locking (worker threads each keep their own pool).
//!
//! Reuse never changes values: callers either take a [`zeroed`] buffer or a
//! [`dirty`] one they fully overwrite. [`Buffer`] is the RAII handle tensor
//! storage lives in — dropping it returns the allocation to the pool.

use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::Deref;

/// Buffers shorter than this stay on plain `malloc`: the allocator already
/// serves small sizes from its fast bins, and pooling them would just bloat
/// the class map.
const MIN_POOL_LEN: usize = 4096;
/// Keep at most this many spare buffers per size class. One forward pass can
/// hold dozens of same-shaped attention maps live on the autodiff tape at
/// once (they all come back to the pool together when the tape drops), so
/// the class depth must cover that peak or the overflow churns the OS again.
const MAX_PER_CLASS: usize = 256;
/// Per-thread cap on pooled floats (128 MiB); beyond it, freed buffers drop.
const MAX_POOLED: usize = 32 << 20;

struct Pool {
    classes: HashMap<usize, Vec<Vec<f32>>>,
    total: usize,
}

thread_local! {
    static POOL: RefCell<Pool> =
        RefCell::new(Pool { classes: HashMap::new(), total: 0 });
}

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters for buffer-pool effectiveness (all threads' pools
/// summed). A warm steady state shows `hits` growing and `misses` flat;
/// persistent misses mean the live set exceeds the pool caps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool-eligible requests served from a recycled buffer.
    pub hits: u64,
    /// Pool-eligible requests that fell through to a fresh allocation.
    pub misses: u64,
    /// Freed buffers accepted back into a pool.
    pub returns: u64,
}

/// Snapshot the buffer-pool counters (cheap; relaxed atomics).
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        returns: RETURNS.load(Ordering::Relaxed),
    }
}

/// Pop a recycled buffer of exactly `len` elements, if one is pooled.
fn take(len: usize) -> Option<Vec<f32>> {
    if len < MIN_POOL_LEN {
        return None;
    }
    let v = POOL.with(|p| {
        let mut p = p.borrow_mut();
        let v = p.classes.get_mut(&len).and_then(Vec::pop);
        if let Some(ref v) = v {
            p.total -= v.len();
        }
        v
    });
    if v.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
    v
}

/// A length-`len` buffer with arbitrary (stale) contents. The caller must
/// overwrite every element before the values can mean anything.
pub(crate) fn dirty(len: usize) -> Vec<f32> {
    take(len).unwrap_or_else(|| vec![0.0; len])
}

/// A length-`len` buffer of zeros. Only recycled buffers pay the memset —
/// fresh allocations come zeroed from calloc (lazily, per touched page).
pub(crate) fn zeroed(len: usize) -> Vec<f32> {
    match take(len) {
        Some(mut v) => {
            v.fill(0.0);
            v
        }
        None => vec![0.0; len],
    }
}

/// Return a buffer to the current thread's pool (or free it if the pool is
/// full or the buffer has spare capacity, which would poison its size class).
pub(crate) fn give(v: Vec<f32>) {
    let len = v.len();
    if len < MIN_POOL_LEN || len != v.capacity() {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.total + len > MAX_POOLED {
            return;
        }
        let class = p.classes.entry(len).or_default();
        if class.len() < MAX_PER_CLASS {
            class.push(v);
            p.total += len;
            RETURNS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// RAII handle for tensor storage: behaves as a `[f32]`, recycles its
/// allocation through the thread-local pool on drop.
pub struct Buffer(Vec<f32>);

impl Buffer {
    pub(crate) fn new(v: Vec<f32>) -> Self {
        Buffer(v)
    }

    pub(crate) fn as_slice(&self) -> &[f32] {
        self.0.as_slice()
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [f32] {
        self.0.as_mut_slice()
    }

    /// Extract the underlying `Vec`, bypassing the pool.
    pub(crate) fn into_vec(mut self) -> Vec<f32> {
        std::mem::take(&mut self.0)
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        give(std::mem::take(&mut self.0));
    }
}

impl Clone for Buffer {
    fn clone(&self) -> Self {
        let mut v = dirty(self.0.len());
        v.copy_from_slice(&self.0);
        Buffer(v)
    }
}

impl Deref for Buffer {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        &self.0
    }
}

impl PartialEq for Buffer {
    fn eq(&self, other: &Self) -> bool {
        self.0 == other.0
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_buffers_bypass_the_pool() {
        give(vec![1.0; 8]);
        let v = dirty(8);
        assert!(v.iter().all(|&x| x == 0.0), "small takes must be fresh");
    }

    #[test]
    fn large_buffers_recycle_and_zeroed_resets() {
        let mut v = dirty(MIN_POOL_LEN);
        v.fill(3.5);
        give(v);
        let z = zeroed(MIN_POOL_LEN);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn buffer_drop_feeds_later_takes() {
        let n = MIN_POOL_LEN * 2;
        {
            let mut b = Buffer::new(vec![0.0; n]);
            b.as_mut_slice().fill(1.0);
        }
        let v = dirty(n);
        assert_eq!(v.len(), n);
        // contents are unspecified for dirty(); zeroed() must clean them
        let z = zeroed(n);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn into_vec_bypasses_recycling() {
        let b = Buffer::new(vec![2.0; MIN_POOL_LEN]);
        let v = b.into_vec();
        assert!(v.iter().all(|&x| x == 2.0));
    }
}
