//! Thread-local recycling pool for 32-byte-aligned tensor storage.
//!
//! A model forward/backward pass allocates hundreds of output buffers per
//! step, most of them hundreds of kilobytes — past glibc's mmap threshold.
//! Served straight from the OS, every one of those costs an mmap/munmap pair
//! plus a page fault per touched page, which measures as ~40% of the whole
//! noise-predictor forward on this codebase. Recycling buffers through a
//! thread-local free list turns that churn into cache-warm reuse with no
//! locking (worker threads each keep their own pool).
//!
//! Storage is an [`AVec`]: a fixed-length `f32` allocation whose base pointer
//! is 32-byte aligned, so SIMD kernels (see [`crate::simd`]) always start
//! from a vector-register-aligned base. Reuse never changes values: callers
//! either take a [`zeroed`] buffer or a [`dirty`] one they fully overwrite.
//! [`Buffer`] is the RAII handle tensor storage lives in — dropping it
//! returns the allocation to the pool.

use std::alloc::{alloc_zeroed, dealloc, Layout};
use std::cell::RefCell;
use std::collections::HashMap;
use std::ops::{Deref, DerefMut};
use std::ptr::NonNull;

/// Alignment (bytes) of every pooled allocation: one AVX2 `__m256` lane row.
pub const ALIGN: usize = 32;

/// Buffers shorter than this stay unpooled: the allocator already serves
/// small sizes from its fast bins, and pooling them would just bloat the
/// class map.
const MIN_POOL_LEN: usize = 4096;
/// Keep at most this many spare buffers per size class. One forward pass can
/// hold dozens of same-shaped attention maps live on the autodiff tape at
/// once (they all come back to the pool together when the tape drops), so
/// the class depth must cover that peak or the overflow churns the OS again.
const MAX_PER_CLASS: usize = 256;
/// Per-thread cap on pooled floats (128 MiB); beyond it, freed buffers drop.
const MAX_POOLED: usize = 32 << 20;

/// A heap allocation of exactly `len` `f32`s whose base pointer is
/// [`ALIGN`]-byte aligned. Unlike `Vec` there is no spare capacity: length
/// and allocation size always agree, which keeps the pool's size classes
/// exact. Dereferences to `[f32]` for all element access.
pub(crate) struct AVec {
    ptr: NonNull<f32>,
    len: usize,
}

// SAFETY: AVec uniquely owns its allocation of plain `f32`s; moving it (or a
// shared `&AVec`) across threads is as safe as for `Vec<f32>`.
unsafe impl Send for AVec {}
unsafe impl Sync for AVec {}

impl AVec {
    fn layout(len: usize) -> Layout {
        // 4 bytes per f32; len is bounded by available memory long before
        // the Layout size overflow check could fail on 64-bit targets.
        Layout::from_size_align(len * 4, ALIGN).expect("AVec layout")
    }

    /// A zero-filled allocation of `len` floats (no pool interaction).
    fn alloc_zeroed(len: usize) -> Self {
        if len == 0 {
            // Dangling but [`ALIGN`]-aligned; never dereferenced or freed.
            let ptr = unsafe { NonNull::new_unchecked(ALIGN as *mut f32) };
            return AVec { ptr, len: 0 };
        }
        // SAFETY: layout has non-zero size; alloc failure aborts via the
        // global handler.
        let raw = unsafe { alloc_zeroed(Self::layout(len)) } as *mut f32;
        let ptr = NonNull::new(raw)
            .unwrap_or_else(|| std::alloc::handle_alloc_error(Self::layout(len)));
        AVec { ptr, len }
    }

    /// Copy a slice into a fresh (pool-served when possible) allocation.
    pub(crate) fn from_slice(src: &[f32]) -> Self {
        let mut v = dirty(src.len());
        v.copy_from_slice(src);
        v
    }

    pub(crate) fn len(&self) -> usize {
        self.len
    }
}

impl Drop for AVec {
    fn drop(&mut self) {
        if self.len != 0 {
            // SAFETY: ptr was allocated with exactly this layout.
            unsafe { dealloc(self.ptr.as_ptr() as *mut u8, Self::layout(self.len)) }
        }
    }
}

impl Deref for AVec {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        // SAFETY: ptr/len describe a live, initialized allocation (all
        // construction paths zero-fill or fully copy).
        unsafe { std::slice::from_raw_parts(self.ptr.as_ptr(), self.len) }
    }
}

impl DerefMut for AVec {
    fn deref_mut(&mut self) -> &mut [f32] {
        // SAFETY: as above, plus unique ownership.
        unsafe { std::slice::from_raw_parts_mut(self.ptr.as_ptr(), self.len) }
    }
}

impl From<&[f32]> for AVec {
    fn from(src: &[f32]) -> Self {
        AVec::from_slice(src)
    }
}

impl From<Vec<f32>> for AVec {
    fn from(src: Vec<f32>) -> Self {
        AVec::from_slice(&src)
    }
}

struct Pool {
    classes: HashMap<usize, Vec<AVec>>,
    total: usize,
}

thread_local! {
    static POOL: RefCell<Pool> =
        RefCell::new(Pool { classes: HashMap::new(), total: 0 });
}

use std::sync::atomic::{AtomicU64, Ordering};

static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);
static RETURNS: AtomicU64 = AtomicU64::new(0);

/// Process-wide counters for buffer-pool effectiveness (all threads' pools
/// summed). A warm steady state shows `hits` growing and `misses` flat;
/// persistent misses mean the live set exceeds the pool caps.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolStats {
    /// Pool-eligible requests served from a recycled buffer.
    pub hits: u64,
    /// Pool-eligible requests that fell through to a fresh allocation.
    pub misses: u64,
    /// Freed buffers accepted back into a pool.
    pub returns: u64,
}

/// Snapshot the buffer-pool counters (cheap; relaxed atomics).
pub fn stats() -> PoolStats {
    PoolStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        returns: RETURNS.load(Ordering::Relaxed),
    }
}

/// Pop a recycled buffer of exactly `len` elements, if one is pooled.
fn take(len: usize) -> Option<AVec> {
    if len < MIN_POOL_LEN {
        return None;
    }
    let v = POOL.with(|p| {
        let mut p = p.borrow_mut();
        let v = p.classes.get_mut(&len).and_then(Vec::pop);
        if let Some(ref v) = v {
            p.total -= v.len();
        }
        v
    });
    if v.is_some() {
        HITS.fetch_add(1, Ordering::Relaxed);
    } else {
        MISSES.fetch_add(1, Ordering::Relaxed);
    }
    v
}

/// A length-`len` buffer with arbitrary (stale) contents. The caller must
/// overwrite every element before the values can mean anything. (Fresh
/// allocations come zeroed — only recycled buffers are actually stale —
/// so the contents are always initialized memory.)
pub(crate) fn dirty(len: usize) -> AVec {
    take(len).unwrap_or_else(|| AVec::alloc_zeroed(len))
}

/// A length-`len` buffer of zeros. Only recycled buffers pay the memset —
/// fresh allocations come zeroed straight from the allocator.
pub(crate) fn zeroed(len: usize) -> AVec {
    match take(len) {
        Some(mut v) => {
            v.fill(0.0);
            v
        }
        None => AVec::alloc_zeroed(len),
    }
}

/// Return a buffer to the current thread's pool (or free it if the pool is
/// full).
pub(crate) fn give(v: AVec) {
    let len = v.len();
    if len < MIN_POOL_LEN {
        return;
    }
    POOL.with(|p| {
        let mut p = p.borrow_mut();
        if p.total + len > MAX_POOLED {
            return;
        }
        let class = p.classes.entry(len).or_default();
        if class.len() < MAX_PER_CLASS {
            class.push(v);
            p.total += len;
            RETURNS.fetch_add(1, Ordering::Relaxed);
        }
    });
}

/// RAII handle for tensor storage: behaves as a `[f32]` with a 32-byte
/// aligned base pointer, recycles its allocation through the thread-local
/// pool on drop.
pub struct Buffer(Option<AVec>);

impl Buffer {
    pub(crate) fn new(v: AVec) -> Self {
        Buffer(Some(v))
    }

    fn inner(&self) -> &AVec {
        self.0.as_ref().expect("Buffer storage present")
    }

    pub(crate) fn as_slice(&self) -> &[f32] {
        self.inner()
    }

    pub(crate) fn as_mut_slice(&mut self) -> &mut [f32] {
        self.0.as_mut().expect("Buffer storage present")
    }

    /// Copy out as a plain `Vec` (the aligned allocation itself recycles).
    pub(crate) fn into_vec(self) -> Vec<f32> {
        self.as_slice().to_vec()
    }
}

impl Drop for Buffer {
    fn drop(&mut self) {
        if let Some(v) = self.0.take() {
            give(v);
        }
    }
}

impl Clone for Buffer {
    fn clone(&self) -> Self {
        Buffer(Some(AVec::from_slice(self.inner())))
    }
}

impl Deref for Buffer {
    type Target = [f32];

    fn deref(&self) -> &[f32] {
        self.inner()
    }
}

impl PartialEq for Buffer {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl std::fmt::Debug for Buffer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.as_slice().fmt(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_buffers_are_32_byte_aligned() {
        for len in [0, 1, 7, 100, MIN_POOL_LEN, MIN_POOL_LEN + 3] {
            let v = dirty(len);
            assert_eq!(v.as_ptr() as usize % ALIGN, 0, "len {len}");
            give(v);
        }
    }

    #[test]
    fn small_buffers_bypass_the_pool() {
        give(AVec::from_slice(&[1.0; 8]));
        let v = dirty(8);
        assert!(v.iter().all(|&x| x == 0.0), "small takes must be fresh");
    }

    #[test]
    fn large_buffers_recycle_and_zeroed_resets() {
        let mut v = dirty(MIN_POOL_LEN);
        v.fill(3.5);
        give(v);
        let z = zeroed(MIN_POOL_LEN);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn buffer_drop_feeds_later_takes() {
        let n = MIN_POOL_LEN * 2;
        {
            let mut b = Buffer::new(zeroed(n));
            b.as_mut_slice().fill(1.0);
        }
        let v = dirty(n);
        assert_eq!(v.len(), n);
        // contents are unspecified for dirty(); zeroed() must clean them
        let z = zeroed(n);
        assert!(z.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn into_vec_copies_out() {
        let b = Buffer::new(AVec::from_slice(&vec![2.0; MIN_POOL_LEN]));
        let v = b.into_vec();
        assert_eq!(v.len(), MIN_POOL_LEN);
        assert!(v.iter().all(|&x| x == 2.0));
    }
}
