//! Thin CLI wrapper over [`pristi_bench::micro`] (the cases live in the
//! library so `pristi bench --filter` can run them in-process too).
//!
//! This is a `harness = false` timing binary with no external benchmark
//! framework. Run with `cargo bench -p pristi-bench` (append `-- <filter>`
//! to run a subset).
//!
//! Flags (after `--`):
//!
//! * `--quick` — much shorter timing target, for CI smoke runs;
//! * `--json`  — additionally write `BENCH_micro.json` at the repo root
//!   (schema `st-bench/1`, one `{name, ns_per_iter, iters}` entry per case;
//!   see EXPERIMENTS.md).

use pristi_bench::micro::{run_all, MicroHarness, JSON_PATH};

fn main() {
    // `cargo bench -- <filter>` forwards everything after `--` to us; accept
    // the first non-flag argument as a substring filter, handle our own
    // `--quick` / `--json` flags, and ignore harness flags like `--bench`
    // that cargo may inject.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut h = MicroHarness::new(
        args.iter().find(|a| !a.starts_with('-')).cloned(),
        args.iter().any(|a| a == "--quick"),
    );
    let json = args.iter().any(|a| a == "--json");

    run_all(&mut h);

    if json {
        std::fs::write(JSON_PATH, h.to_json())
            .unwrap_or_else(|e| panic!("cannot write {JSON_PATH}: {e}"));
        println!("wrote {} entries to {JSON_PATH}", h.results().len());
    }
}
