//! Micro-benchmarks for the hot paths of the PriSTI stack: attention
//! forward/backward, message passing, one reverse diffusion step, linear
//! interpolation, and a full noise-prediction forward pass.
//!
//! This is a `harness = false` timing binary with no external benchmark
//! framework: each case is warmed up, then timed over a fixed batch of
//! iterations with `std::time::Instant`, reporting ns/iter. Run with
//! `cargo bench -p pristi-bench` (append `-- <filter>` to run a subset).

use st_data::interpolate::linear_interpolate;
use st_diffusion::{p_sample_step, DiffusionSchedule};
use st_graph::{random_plane_layout, SensorGraph};
use st_rand::SeedableRng;
use st_rand::StdRng;
use st_tensor::graph::Graph;
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{Mpnn, MultiHeadAttention};
use st_tensor::param::ParamStore;
use std::hint::black_box;
use std::time::Instant;

const WARMUP_ITERS: u32 = 5;
const MIN_SAMPLE_ITERS: u32 = 10;
/// Keep timing until at least this much wall clock has been spent.
const TARGET_NANOS: u128 = 200_000_000;

/// Time `f`, printing a criterion-style `name ... ns/iter` line.
fn bench(filter: Option<&str>, name: &str, mut f: impl FnMut()) {
    if let Some(pat) = filter {
        if !name.contains(pat) {
            return;
        }
    }
    for _ in 0..WARMUP_ITERS {
        f();
    }
    let mut iters = 0u32;
    let mut elapsed = 0u128;
    while elapsed < TARGET_NANOS {
        let start = Instant::now();
        for _ in 0..MIN_SAMPLE_ITERS {
            f();
        }
        elapsed += start.elapsed().as_nanos();
        iters += MIN_SAMPLE_ITERS;
    }
    let per_iter = elapsed / u128::from(iters);
    println!("{name:<45} {per_iter:>12} ns/iter ({iters} iters)");
}

fn bench_attention(filter: Option<&str>) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "a", 32, 4, &mut rng);
    let x_val = NdArray::randn(&[8, 24, 32], &mut rng);

    bench(filter, "attention_forward_8x24x32", || {
        let mut g = Graph::new_eval(&store);
        let x = g.input(black_box(x_val.clone()));
        let y = attn.forward_self(&mut g, x);
        black_box(g.value(y).data()[0]);
    });

    bench(filter, "attention_forward_backward_8x24x32", || {
        let mut g = Graph::new(&store);
        let x = g.input(black_box(x_val.clone()));
        let y = attn.forward_self(&mut g, x);
        let t = g.input(NdArray::zeros(&[8, 24, 32]));
        let m = g.input(NdArray::ones(&[8, 24, 32]));
        let loss = g.mse_masked(y, t, m);
        black_box(g.backward(loss).len());
    });
}

fn bench_mpnn(filter: Option<&str>) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = SensorGraph::from_coords(random_plane_layout(36, 40.0, 3), 0.1);
    let (fwd, bwd) = graph.transition_matrices();
    let mut store = ParamStore::new();
    let mpnn = Mpnn::new(&mut store, "mp", 32, vec![fwd, bwd], 36, 2, 8, &mut rng);
    let x_val = NdArray::randn(&[24, 36, 32], &mut rng);

    bench(filter, "mpnn_forward_24x36x32", || {
        let mut g = Graph::new_eval(&store);
        let x = g.input(black_box(x_val.clone()));
        let y = mpnn.forward(&mut g, x);
        black_box(g.value(y).data()[0]);
    });
}

fn bench_diffusion_step(filter: Option<&str>) {
    let schedule = DiffusionSchedule::pristi_default(50);
    let mut rng = StdRng::seed_from_u64(4);
    let x = NdArray::randn(&[8, 36, 24], &mut rng);
    let eps = NdArray::randn(&[8, 36, 24], &mut rng);

    bench(filter, "p_sample_step_8x36x24", || {
        black_box(p_sample_step(&x, &eps, &schedule, 25, &mut rng));
    });
}

fn bench_interpolation(filter: Option<&str>) {
    let mut rng = StdRng::seed_from_u64(5);
    let values = NdArray::randn(&[36, 48], &mut rng);
    let mask = NdArray::rand_uniform(&[36, 48], 0.0, 1.0, &mut rng).map(|v| f32::from(v > 0.3));

    bench(filter, "linear_interpolate_36x48", || {
        black_box(linear_interpolate(&values, &mask, 0.0));
    });
}

fn bench_full_noise_predictor(filter: Option<&str>) {
    let mut rng = StdRng::seed_from_u64(6);
    let graph = SensorGraph::from_coords(random_plane_layout(24, 30.0, 7), 0.1);
    let mut cfg = pristi_core::PristiConfig::small();
    cfg.d_model = 16;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.time_emb_dim = 32;
    cfg.node_emb_dim = 8;
    cfg.step_emb_dim = 32;
    cfg.virtual_nodes = 8;
    let model = pristi_core::PristiModel::new(cfg, &graph, 24, &mut rng);
    let noisy = NdArray::randn(&[4, 24, 24], &mut rng);
    let cond = NdArray::randn(&[4, 24, 24], &mut rng);

    bench(filter, "pristi_eps_theta_forward_4x24x24", || {
        black_box(model.predict_eps_eval(&noisy, &cond, 10));
    });
}

fn main() {
    // `cargo bench -- <filter>` forwards everything after `--` to us; accept
    // the first non-flag argument as a substring filter, ignore harness flags
    // like `--bench` that cargo may inject.
    let args: Vec<String> = std::env::args().skip(1).collect();
    let filter = args.iter().find(|a| !a.starts_with('-')).map(String::as_str);

    bench_attention(filter);
    bench_mpnn(filter);
    bench_diffusion_step(filter);
    bench_interpolation(filter);
    bench_full_noise_predictor(filter);
}
