//! Regression gate for the per-label `st_par` dispatch policy.
//!
//! The profile tentpole found `fwd.batch_matmul_transb` fanning its per-head
//! attention panels (4×24 tiles, well under one `MR x NR` kernel tile of
//! work) across the pool, so the tmax leg of `pristi profile` ran *slower*
//! than the pinned single-thread leg. The fix is the per-label policy table
//! in `st_par::policy`: matmul-family labels demand enough work per
//! participant that sub-tile batches stay inline. This suite pins both
//! halves:
//!
//! 1. deterministic assertions on the policy table and the `worthwhile` /
//!    `chunk_items` gates at pinned thread counts, and
//! 2. a measured mini-scan that replays the profile mechanism — the same
//!    denoiser workload as `pristi_eps_theta_forward_4x24x24`, instrumented
//!    via `st_obs` at 1 thread and at `max_threads()` — and asserts that
//!    whatever op the scaling verdict names, it is not
//!    `fwd.batch_matmul_transb` (and on this all-inline workload, that no op
//!    regresses past the delta bar at all would be ideal, but only the
//!    attention-batch claim is stable under CI noise).

use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

use pristi_bench::scaling::{regresses, worst_scaling};
use st_rand::SeedableRng;
use st_rand::StdRng;
use st_tensor::ndarray::NdArray;

#[test]
fn policy_table_pins_matmul_family_thresholds() {
    // Batched attention products: panels are tiny, so the per-thread floor
    // is high enough that the profile workload (≤ 96·24·16 ≈ 37k work per
    // batch) never fans out.
    for label in ["batch_matmul", "batch_matmul_transb", "batch_matmul_transa", "matmul_shared_left"]
    {
        let p = st_par::policy(label);
        assert_eq!(p.min_work_per_thread, 128 * 1024, "{label}");
        assert_eq!(p.min_chunk_work, 64 * 1024, "{label}");
    }
    // 2-D matmuls amortise better but still need most of a millisecond of
    // kernel work per participant before the fan-out pays.
    for label in ["matmul", "matmul_transb"] {
        let p = st_par::policy(label);
        assert_eq!(p.min_work_per_thread, 768 * 1024, "{label}");
        assert_eq!(p.min_chunk_work, 64 * 1024, "{label}");
    }
    // Conv/MPNN backward loops have heavier per-element work.
    for label in ["conv1d_fwd", "conv1d_bwd", "mpnn_bwd_gs"] {
        let p = st_par::policy(label);
        assert_eq!(p.min_work_per_thread, 64 * 1024, "{label}");
        assert_eq!(p.min_chunk_work, 32 * 1024, "{label}");
    }
    // Unknown labels fall back to the generic floor.
    let p = st_par::policy("anything_else");
    assert_eq!(p.min_work_per_thread, st_par::MIN_PAR_ELEMS);
    assert_eq!(p.min_chunk_work, st_par::MIN_PAR_ELEMS);
}

#[test]
fn chunk_items_respects_kernel_tiles() {
    // A chunk must carry at least `min_chunk_work` scalar ops. For the
    // attention batches (per-item work = m·k·n of one head's panel), that
    // means dozens of items per chunk — never the one-item-per-task splits
    // that caused the regression.
    let per_item = 4 * 16 * 24; // one [4,16]x[16,24] head panel
    assert!(st_par::chunk_items("batch_matmul_transb", per_item) >= 32);
    // Degenerate inputs still produce a positive chunk size.
    assert!(st_par::chunk_items("batch_matmul_transb", 0) >= 1);
    assert!(st_par::chunk_items("batch_matmul_transb", usize::MAX) >= 1);
}

#[test]
fn worthwhile_gates_profile_sized_batches_inline() {
    // Serialise against other tests that pin the pool width.
    let _guard = THREADS.lock().unwrap();
    st_par::set_threads(4);
    // The profile workload's biggest attention batch: 96 panels of
    // [4,24]x[24,4] work ≈ 37k scalar ops — far below 4 threads × 128k.
    assert!(!st_par::worthwhile("batch_matmul_transb", 96 * 4 * 24 * 4));
    // The gate opens once a batch really carries enough work to split.
    assert!(st_par::worthwhile("batch_matmul_transb", 4 * 128 * 1024));
    // Single-threaded pools never dispatch, regardless of work.
    st_par::set_threads(1);
    assert!(!st_par::worthwhile("batch_matmul_transb", usize::MAX / 2));
    st_par::set_threads(0);
}

/// Global lock: `set_threads` is process-wide, so the measured scan and the
/// `worthwhile` assertions must not interleave.
static THREADS: Mutex<()> = Mutex::new(());

struct Collect(Arc<Mutex<Vec<String>>>);
impl st_obs::Sink for Collect {
    fn event(&mut self, e: &st_obs::Event) {
        self.0.lock().unwrap().push(e.to_json());
    }
}

/// Parse an op event line into `("phase.kind", total_ns)`.
fn parse(l: &str) -> Option<(String, u64)> {
    if !l.contains("\"ev\":\"op\"") {
        return None;
    }
    let i = l.find("\"phase\":\"")? + 9;
    let phase = &l[i..i + l[i..].find('"')?];
    let i = l.find("\"kind\":\"")? + 8;
    let kind = &l[i..i + l[i..].find('"')?];
    let pat = "\"total_ns\":";
    let i = l.find(pat)? + pat.len();
    let rest = &l[i..];
    let end = rest.find([',', '}'])?;
    Some((format!("{phase}.{kind}"), rest[..end].parse().ok()?))
}

/// Run the denoiser forward pinned at `threads`, return per-op totals.
fn instrumented_forward(
    model: &pristi_core::PristiModel,
    noisy: &NdArray,
    cond: &NdArray,
    threads: usize,
    iters: usize,
) -> BTreeMap<String, u64> {
    st_par::set_threads(threads);
    let lines: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
    {
        let _rec = st_obs::install(vec![Box::new(Collect(Arc::clone(&lines)))]);
        for _ in 0..iters {
            let _ = std::hint::black_box(model.predict_eps_eval(noisy, cond, 10));
        }
    }
    st_par::set_threads(0);
    let mut totals = BTreeMap::new();
    for l in lines.lock().unwrap().iter() {
        if let Some((op, ns)) = parse(l) {
            *totals.entry(op).or_insert(0u64) += ns;
        }
    }
    totals
}

/// The measured gate: replay `pristi profile`'s thread-scaling scan on the
/// denoiser hot path and assert the verdict no longer names the attention
/// batch. This is the exact workload whose profile report motivated the
/// per-label policy (see DESIGN.md §14).
#[test]
fn profile_scaling_verdict_clears_batch_matmul_transb() {
    let _guard = THREADS.lock().unwrap();
    let mut rng = StdRng::seed_from_u64(6);
    let graph =
        st_graph::SensorGraph::from_coords(st_graph::random_plane_layout(24, 30.0, 7), 0.1);
    let mut cfg = pristi_core::PristiConfig::small();
    cfg.d_model = 16;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.time_emb_dim = 32;
    cfg.node_emb_dim = 8;
    cfg.step_emb_dim = 32;
    cfg.virtual_nodes = 8;
    let model = pristi_core::PristiModel::new(cfg, &graph, 24, &mut rng).unwrap();
    let noisy = NdArray::randn(&[4, 24, 24], &mut rng);
    let cond = NdArray::randn(&[4, 24, 24], &mut rng);
    // Warm the allocator pool and code paths outside the measured region.
    let _ = model.predict_eps_eval(&noisy, &cond, 10);

    let iters = 3;
    let t1 = instrumented_forward(&model, &noisy, &cond, 1, iters);
    let tmax = instrumented_forward(&model, &noisy, &cond, st_par::max_threads(), iters);

    let mut scaling: BTreeMap<String, (u64, u64)> = BTreeMap::new();
    for (op, &a) in &t1 {
        let b = tmax.get(op).copied().unwrap_or(0);
        scaling.insert(op.clone(), (a, b));
    }
    assert!(!scaling.is_empty(), "no op events collected");

    // With every matmul-family gate rejecting this workload, both legs run
    // identical inline code; any verdict the delta bar lets through is
    // jitter on some other op. The policy regression this pins: the verdict
    // must never again name the attention score batches.
    if let Some((op, t1_ns, tmax_ns, ratio)) = worst_scaling(&scaling) {
        if regresses(ratio) {
            assert_ne!(
                op, "fwd.batch_matmul_transb",
                "attention batches regressed again at tmax: {t1_ns}ns -> {tmax_ns}ns ({ratio:.2}x)"
            );
        }
    }
}
