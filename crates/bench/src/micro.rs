//! Micro-benchmark cases for the hot paths of the PriSTI stack: attention
//! forward/backward, message passing, one reverse diffusion step, linear
//! interpolation, a full noise-prediction forward pass, per-step denoise cost
//! with and without the prior cache, ensemble quantile extraction, and
//! micro-batched vs serial imputation serving.
//!
//! The cases live in the library (rather than only in the `harness = false`
//! bench binary) so `pristi bench --filter <substr>` can run a subset
//! in-process without building and running the whole suite. The timing loop
//! is framework-free: each case is warmed up, then timed over a fixed batch
//! of iterations with `std::time::Instant`, reporting ns/iter.

use st_data::interpolate::linear_interpolate;
use st_diffusion::{p_sample_step, DiffusionSchedule};
use st_graph::{random_plane_layout, SensorGraph};
use st_rand::SeedableRng;
use st_rand::StdRng;
use st_tensor::graph::Graph;
use st_tensor::ndarray::NdArray;
use st_tensor::nn::{Mpnn, MultiHeadAttention};
use st_tensor::param::ParamStore;
use std::hint::black_box;
use std::time::Instant;

const WARMUP_ITERS: u32 = 5;
const MIN_SAMPLE_ITERS: u32 = 10;
/// Keep timing until at least this much wall clock has been spent.
const TARGET_NANOS: u128 = 200_000_000;
/// `--quick` variants: enough for a CI smoke signal, not for a stable number.
const QUICK_WARMUP_ITERS: u32 = 1;
const QUICK_TARGET_NANOS: u128 = 10_000_000;

/// Path the `--json` report is written to: the workspace root, so tooling
/// (scripts/verify.sh, EXPERIMENTS.md readers) can find it without arguments.
pub const JSON_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_micro.json");

/// One finished benchmark case.
pub struct BenchResult {
    /// Case name as printed and written to the JSON report.
    pub name: String,
    /// Measured nanoseconds per iteration.
    pub ns_per_iter: u128,
    /// Iterations the measurement averaged over.
    pub iters: u32,
}

/// Shared state for a bench run: CLI options plus collected results.
pub struct MicroHarness {
    filter: Option<String>,
    quick: bool,
    results: Vec<BenchResult>,
}

impl MicroHarness {
    /// A harness running only cases whose name contains `filter` (all cases
    /// when `None`), with `--quick`-length timing when `quick` is set.
    pub fn new(filter: Option<String>, quick: bool) -> Self {
        Self { filter, quick, results: Vec::new() }
    }

    /// The results collected so far.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Time `f`, printing a criterion-style `name ... ns/iter` line and
    /// recording the result for the optional JSON report.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        if let Some(pat) = &self.filter {
            if !name.contains(pat.as_str()) {
                return;
            }
        }
        let (warmup, target) = if self.quick {
            (QUICK_WARMUP_ITERS, QUICK_TARGET_NANOS)
        } else {
            (WARMUP_ITERS, TARGET_NANOS)
        };
        for _ in 0..warmup {
            f();
        }
        let mut iters = 0u32;
        let mut elapsed = 0u128;
        while elapsed < target {
            let start = Instant::now();
            for _ in 0..MIN_SAMPLE_ITERS {
                f();
            }
            elapsed += start.elapsed().as_nanos();
            iters += MIN_SAMPLE_ITERS;
        }
        let per_iter = elapsed / u128::from(iters);
        println!("{name:<45} {per_iter:>12} ns/iter ({iters} iters)");
        self.results.push(BenchResult { name: name.to_string(), ns_per_iter: per_iter, iters });
    }

    /// Render the collected results as the `st-bench/1` JSON document.
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .results
            .iter()
            .map(|r| {
                format!(
                    "{{\"name\":{},\"ns_per_iter\":{},\"iters\":{}}}",
                    st_obs::json::escape(&r.name),
                    r.ns_per_iter,
                    r.iters
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"st-bench/1\",\"quick\":{},\"entries\":[{}]}}\n",
            self.quick,
            entries.join(",")
        )
    }
}

/// The (thread count, entry-name suffix) points used for scaling entries;
/// `scripts/verify.sh` greps BENCH_micro.json for the resulting names.
fn thread_scaling_points() -> [(usize, &'static str); 3] {
    [(1, "t1"), (2, "t2"), (st_par::max_threads(), "tmax")]
}

fn bench_attention(h: &mut MicroHarness) {
    let mut rng = StdRng::seed_from_u64(1);
    let mut store = ParamStore::new();
    let attn = MultiHeadAttention::new(&mut store, "a", 32, 4, &mut rng);
    let x_val = NdArray::randn(&[8, 24, 32], &mut rng);

    h.bench("attention_forward_8x24x32", || {
        let mut g = Graph::new_eval(&store);
        let x = g.input(black_box(x_val.clone()));
        let y = attn.forward_self(&mut g, x);
        black_box(g.value(y).data()[0]);
    });

    let fwd_bwd = |store: &ParamStore, x_val: &NdArray| {
        let mut g = Graph::new(store);
        let x = g.input(black_box(x_val.clone()));
        let y = attn.forward_self(&mut g, x);
        let t = g.input(NdArray::zeros(&[8, 24, 32]));
        let m = g.input(NdArray::ones(&[8, 24, 32]));
        let loss = g.mse_masked(y, t, m);
        black_box(g.backward(loss).len());
    };

    h.bench("attention_forward_backward_8x24x32", || fwd_bwd(&store, &x_val));

    // Thread-scaling variants: the same case pinned to 1, 2, and max pool
    // threads (see EXPERIMENTS.md — on a single-core host t2/tmax measure
    // dispatch overhead, not speedup).
    for (n, tag) in thread_scaling_points() {
        st_par::set_threads(n);
        h.bench(&format!("attention_forward_backward_8x24x32_{tag}"), || fwd_bwd(&store, &x_val));
    }
    st_par::set_threads(0);
}

/// Dense-path matmul timing (satellite for the branch-free kernel change):
/// the cache-blocked kernel no longer skips `a == 0.0` entries, so dense and
/// half-zero inputs now run at the same speed — the dense entry tracks the
/// win over the old branchy kernel, the half-zero entry documents the traded
/// away masked-input shortcut.
fn bench_matmul_kernels(h: &mut MicroHarness) {
    let mut rng = StdRng::seed_from_u64(7);
    let a_dense = NdArray::randn(&[96, 96], &mut rng);
    let b = NdArray::randn(&[96, 96], &mut rng);
    let a_half_zero =
        a_dense.zip_map(&NdArray::rand_uniform(&[96, 96], 0.0, 1.0, &mut rng), |v, u| {
            if u < 0.5 {
                0.0
            } else {
                v
            }
        });

    h.bench("matmul_dense_96x96x96", || {
        black_box(black_box(&a_dense).matmul(black_box(&b)));
    });
    h.bench("matmul_half_zero_96x96x96", || {
        black_box(black_box(&a_half_zero).matmul(black_box(&b)));
    });
}

fn bench_mpnn(h: &mut MicroHarness) {
    let mut rng = StdRng::seed_from_u64(2);
    let graph = SensorGraph::from_coords(random_plane_layout(36, 40.0, 3), 0.1);
    let (fwd, bwd) = graph.transition_matrices();
    let mut store = ParamStore::new();
    let mpnn = Mpnn::new(&mut store, "mp", 32, vec![fwd, bwd], 36, 2, 8, &mut rng);
    let x_val = NdArray::randn(&[24, 36, 32], &mut rng);

    h.bench("mpnn_forward_24x36x32", || {
        let mut g = Graph::new_eval(&store);
        let x = g.input(black_box(x_val.clone()));
        let y = mpnn.forward(&mut g, x);
        black_box(g.value(y).data()[0]);
    });
}

fn bench_diffusion_step(h: &mut MicroHarness) {
    let schedule = DiffusionSchedule::pristi_default(50);
    let mut rng = StdRng::seed_from_u64(4);
    let x = NdArray::randn(&[8, 36, 24], &mut rng);
    let eps = NdArray::randn(&[8, 36, 24], &mut rng);

    h.bench("p_sample_step_8x36x24", || {
        black_box(p_sample_step(&x, &eps, &schedule, 25, &mut rng));
    });
}

fn bench_interpolation(h: &mut MicroHarness) {
    let mut rng = StdRng::seed_from_u64(5);
    let values = NdArray::randn(&[36, 48], &mut rng);
    let mask = NdArray::rand_uniform(&[36, 48], 0.0, 1.0, &mut rng).map(|v| f32::from(v > 0.3));

    h.bench("linear_interpolate_36x48", || {
        black_box(linear_interpolate(&values, &mask, 0.0));
    });
}

fn bench_full_noise_predictor(h: &mut MicroHarness) {
    let mut rng = StdRng::seed_from_u64(6);
    let graph = SensorGraph::from_coords(random_plane_layout(24, 30.0, 7), 0.1);
    let mut cfg = pristi_core::PristiConfig::small();
    cfg.d_model = 16;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.time_emb_dim = 32;
    cfg.node_emb_dim = 8;
    cfg.step_emb_dim = 32;
    cfg.virtual_nodes = 8;
    let model = pristi_core::PristiModel::new(cfg, &graph, 24, &mut rng).unwrap();
    let noisy = NdArray::randn(&[4, 24, 24], &mut rng);
    let cond = NdArray::randn(&[4, 24, 24], &mut rng);

    h.bench("pristi_eps_theta_forward_4x24x24", || {
        black_box(model.predict_eps_eval(&noisy, &cond, 10));
    });

    for (n, tag) in thread_scaling_points() {
        st_par::set_threads(n);
        h.bench(&format!("pristi_eps_theta_forward_4x24x24_{tag}"), || {
            black_box(model.predict_eps_eval(&noisy, &cond, 10));
        });
    }
    st_par::set_threads(0);
}

/// Per-step denoise cost with and without the prior cache (the prior-cached
/// inference tentpole): one full reverse step — ε-prediction plus the
/// `p_sample` update — on an `[8, 36, 24]` batch. The uncached variant
/// rebuilds `H^pri`, `U`, and every prior-derived attention weight matrix
/// inside `predict_eps_eval`; the cached variant replays them from a
/// `PriorCache` built once outside the timed region, running only the
/// step-dependent noise path. Outputs are bitwise identical (pinned in
/// `crates/core/tests/prior_cache.rs`); the delta is the per-step share of
/// the step-invariant prior work.
fn bench_prior_cache(h: &mut MicroHarness) {
    let mut rng = StdRng::seed_from_u64(12);
    let graph = SensorGraph::from_coords(random_plane_layout(36, 40.0, 3), 0.1);
    let mut cfg = pristi_core::PristiConfig::small();
    cfg.d_model = 16;
    cfg.heads = 4;
    cfg.layers = 2;
    cfg.time_emb_dim = 32;
    cfg.node_emb_dim = 8;
    cfg.step_emb_dim = 32;
    cfg.virtual_nodes = 8;
    let model = pristi_core::PristiModel::new(cfg, &graph, 24, &mut rng).unwrap();
    let schedule = DiffusionSchedule::pristi_default(50);
    let noisy = NdArray::randn(&[8, 36, 24], &mut rng);
    // One request, 8 ensemble samples: the cache is built from the [1, N, L]
    // deduplicated conditional, the uncached reference sees it replicated.
    let cond_r = NdArray::randn(&[1, 36, 24], &mut rng);
    let mut cond_b = NdArray::zeros(&[8, 36, 24]);
    for s in 0..8 {
        cond_b.data_mut()[s * 36 * 24..(s + 1) * 36 * 24].copy_from_slice(cond_r.data());
    }

    h.bench("p_sample_step_uncached_8x36x24", || {
        let eps = model.predict_eps_eval(&noisy, &cond_b, 25);
        black_box(p_sample_step(&noisy, &eps, &schedule, 25, &mut rng));
    });

    let cache = model.build_prior_cache(&cond_r, &[8]);
    h.bench("p_sample_step_cached_8x36x24", || {
        let eps = model.predict_eps_eval_cached(&cache, &noisy, 25);
        black_box(p_sample_step(&noisy, &eps, &schedule, 25, &mut rng));
    });
}

/// Quantile extraction from an imputation ensemble (satellite for the cached
/// sorted layout): `quantile_cached` reads the position-major `[P, S]` sorted
/// cache `ImputationResult` builds once, `quantile_resort` is the old
/// behaviour — gather and re-sort every position's ensemble on every call.
fn bench_quantile_cache(h: &mut MicroHarness) {
    let (s, n, l) = (32, 36, 24);
    let mut rng = StdRng::seed_from_u64(8);
    let samples: Vec<NdArray> = (0..s).map(|_| NdArray::randn(&[n, l], &mut rng)).collect();
    let mask = NdArray::ones(&[n, l]);
    let res = pristi_core::ImputationResult::new(samples.clone(), mask);
    res.quantile(0.5); // build the cache outside the timed region

    h.bench("quantile_cached_32x36x24", || {
        black_box(res.quantile(black_box(0.9)));
    });
    h.bench("quantile_resort_32x36x24", || {
        let mut out = NdArray::zeros(&[n, l]);
        let mut buf = vec![0.0f32; s];
        for p in 0..n * l {
            for (si, sample) in samples.iter().enumerate() {
                buf[si] = sample.data()[p];
            }
            buf.sort_unstable_by(f32::total_cmp);
            out.data_mut()[p] = st_metrics::quantile_of_sorted(&buf, 0.9) as f32;
        }
        black_box(out);
    });
}

/// Micro-batched serving vs one-at-a-time serving (the st-serve tentpole):
/// the same four 2-sample requests run as one coalesced `impute_batch` call
/// (one `predict_eps_eval` per denoise step for all of them) and as four
/// serial `impute` calls. Same RNG streams, bitwise-identical outputs — the
/// delta is pure batching throughput.
fn bench_serve_batching(h: &mut MicroHarness) {
    use pristi_core::train::{train, TrainConfig};
    use pristi_core::{
        impute, impute_batch, impute_batch_with, BatchItem, ImputeOptions, PriorMode, Sampler,
    };
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;

    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 4,
        seed: 9,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 10);
    let mut cfg = pristi_core::PristiConfig::small();
    cfg.d_model = 8;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.t_steps = 8;
    cfg.time_emb_dim = 8;
    cfg.node_emb_dim = 4;
    cfg.step_emb_dim = 8;
    cfg.virtual_nodes = 4;
    cfg.adaptive_dim = 2;
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: 11,
        ..Default::default()
    };
    let trained = train(&data, cfg, &tc).expect("bench training config is valid");
    let windows = data.windows(st_data::dataset::Split::Test, 12, 12);
    let reqs: Vec<_> = (0..4u64).map(|i| &windows[i as usize % windows.len()]).collect();
    let opts = ImputeOptions { n_samples: 2, sampler: Sampler::Ddpm };

    h.bench("serve_serial_4req_x2samples", || {
        for (i, w) in reqs.iter().enumerate() {
            let mut rng = StdRng::seed_from_u64(100 + i as u64);
            black_box(impute(&trained, w, &opts, &mut rng).expect("bench window is valid"));
        }
    });
    h.bench("serve_batched_4req_x2samples", || {
        let mut items: Vec<BatchItem<'_>> = reqs
            .iter()
            .enumerate()
            .map(|(i, w)| BatchItem {
                window: w,
                n_samples: 2,
                rng: StdRng::seed_from_u64(100 + i as u64),
            })
            .collect();
        black_box(impute_batch(&trained, &mut items, opts.sampler).expect("bench batch is valid"));
    });

    // End-to-end prior-cache A/B on the same coalesced batch: identical
    // requests and RNG streams, identical (bitwise) outputs — the delta is
    // the step-invariant prior work the cache hoists out of the reverse loop.
    let make_items = || -> Vec<BatchItem<'_>> {
        reqs.iter()
            .enumerate()
            .map(|(i, w)| BatchItem {
                window: w,
                n_samples: 2,
                rng: StdRng::seed_from_u64(100 + i as u64),
            })
            .collect()
    };
    h.bench("impute_cached_4req_x2samples", || {
        let mut items = make_items();
        black_box(
            impute_batch_with(&trained, &mut items, opts.sampler, PriorMode::Cached)
                .expect("bench batch is valid"),
        );
    });
    h.bench("impute_uncached_4req_x2samples", || {
        let mut items = make_items();
        black_box(
            impute_batch_with(&trained, &mut items, opts.sampler, PriorMode::Recompute)
                .expect("bench batch is valid"),
        );
    });

    // Per-solver few-step entries on the same coalesced batch, specs via the
    // shared parser. Against the DDPM entry above (8 network evaluations on
    // this tiny schedule) these measure what few-step solvers buy end to end;
    // the steps-vs-CRPS sweep (`pristi bench --sweep`) covers accuracy.
    for (name, spec) in [
        ("impute_ddim_4req_x2samples", "ddim:4"),
        ("impute_pndm_4req_x2samples", "pndm:3"),
        ("impute_refine_4req_x2samples", "refine:3"),
    ] {
        let sampler: Sampler = spec.parse().expect("bench solver specs are valid");
        h.bench(name, || {
            let mut items = make_items();
            black_box(impute_batch(&trained, &mut items, sampler).expect("bench batch is valid"));
        });
    }
}

/// Streaming online imputation vs full-window recompute (the streaming
/// tentpole): both entries process the same deterministic 16-tick feed —
/// a mostly-observed sensor network where one gap opens at the head of the
/// log, is revised while inside the horizon, then settles — the realistic
/// regime streaming targets. `stream_tick_amortized_16t` drives a
/// [`st_serve::StreamSession`], which shifts the window in place, maintains
/// the interpolated conditional incrementally, and **skips the reverse pass
/// on ticks with no open gap**; `stream_tick_recompute_16t` is the naive
/// online baseline — a cold full-window `impute` (interpolation + prior
/// build + reverse pass) on every tick. Both use the same few-step solver
/// and ensemble size, so the ratio is the amortised per-tick win
/// (`scripts/verify.sh` gates it at ≥ 2×; EXPERIMENTS.md has the table).
fn bench_stream_tick(h: &mut MicroHarness) {
    use pristi_core::train::{train, TrainConfig};
    use pristi_core::{impute, ImputeOptions, Sampler};
    use st_data::dataset::Window;
    use st_data::generators::{generate_air_quality, AirQualityConfig};
    use st_data::missing::inject_point_missing;
    use st_serve::{stream_rng, StreamConfig, StreamSession};
    use std::sync::Arc;

    let (n, l, ticks) = (8usize, 12usize, 16usize);
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: n,
        n_days: 4,
        seed: 9,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, 10);
    let mut cfg = pristi_core::PristiConfig::small();
    cfg.d_model = 8;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.t_steps = 8;
    cfg.time_emb_dim = 8;
    cfg.node_emb_dim = 4;
    cfg.step_emb_dim = 8;
    cfg.virtual_nodes = 4;
    cfg.adaptive_dim = 2;
    let tc = TrainConfig {
        epochs: 1,
        batch_size: 4,
        window_len: l,
        window_stride: l,
        seed: 11,
        ..Default::default()
    };
    let trained = Arc::new(train(&data, cfg, &tc).expect("bench training config is valid"));

    // The tick feed: a healthy mostly-observed network — one sensor drops a
    // reading on the first tick of the log, every other cell reports. The
    // gap stays open for `horizon` ticks (revised each tick), then settles
    // and the remaining ticks skip the reverse pass.
    let mut rng = StdRng::seed_from_u64(13);
    let feed: Vec<Vec<Option<f32>>> = (0..ticks)
        .map(|t| {
            (0..n)
                .map(|i| {
                    use st_rand::Rng;
                    let v = 18.0 + (rng.random::<f32>() - 0.5) * 10.0;
                    (t % 16 != 0 || i != t % n).then_some(v)
                })
                .collect()
        })
        .collect();
    let stream_cfg = StreamConfig {
        n_samples: 2,
        sampler: Sampler::Pndm { steps: 4, order: 4 },
        horizon: 4,
        base_seed: 17,
    };

    h.bench("stream_tick_amortized_16t", || {
        let mut session = StreamSession::new(Arc::clone(&trained), stream_cfg, 0)
            .expect("bench stream config is valid");
        for cells in &feed {
            black_box(session.data_tick(cells).expect("bench feed is valid"));
        }
    });

    // Baseline windows (one per tick position), assembled outside the timed
    // region — the baseline pays only for the per-tick cold impute.
    let windows: Vec<Window> = (0..ticks)
        .map(|t| {
            let mut values = NdArray::zeros(&[n, l]);
            let mut observed = NdArray::zeros(&[n, l]);
            for (back, cells) in feed[..=t].iter().rev().take(l).enumerate() {
                let col = l - 1 - back;
                for i in 0..n {
                    if let Some(v) = cells[i] {
                        values.data_mut()[i * l + col] = v;
                        observed.data_mut()[i * l + col] = 1.0;
                    }
                }
            }
            Window { values, observed, eval: NdArray::zeros(&[n, l]), t_start: 0 }
        })
        .collect();
    let opts = ImputeOptions { n_samples: stream_cfg.n_samples, sampler: stream_cfg.sampler };
    h.bench("stream_tick_recompute_16t", || {
        for (t, w) in windows.iter().enumerate() {
            let mut rng = stream_rng(stream_cfg.base_seed, 0, t as u64);
            black_box(impute(&trained, w, &opts, &mut rng).expect("bench window is valid"));
        }
    });
}

/// Run every micro-benchmark case against `h` (its filter decides which
/// actually time).
pub fn run_all(h: &mut MicroHarness) {
    bench_attention(h);
    bench_matmul_kernels(h);
    bench_mpnn(h);
    bench_diffusion_step(h);
    bench_interpolation(h);
    bench_full_noise_predictor(h);
    bench_prior_cache(h);
    bench_quantile_cache(h);
    bench_serve_batching(h);
    bench_stream_tick(h);
}
