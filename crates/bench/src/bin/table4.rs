//! **Table IV** — CRPS of the probabilistic imputers (V-RIN, GP-VAE, CSDI,
//! PriSTI) on all five settings.
//!
//! V-RIN and GP-VAE are run here (they are cheap). For CSDI and PriSTI the
//! binary reuses `results/table4_diffusion.csv` when a prior `table3` run
//! produced it; otherwise it trains them itself.

use pristi_bench::report::fmt_metric;
use pristi_bench::{build_dataset, methods, Scale, Setting, Table};
use pristi_core::ModelVariant;
use st_baselines::gpvae::{GpvaeConfig, GpvaeImputer};
use st_baselines::vrin::{VrinConfig, VrinImputer};
use st_baselines::ProbabilisticImputer;
use st_data::dataset::Split;
use std::collections::HashMap;

fn main() {
    let scale = Scale::from_env();
    println!("Table IV reproduction (scale = {scale})\n");

    // Reuse diffusion CRPS from a previous table3 run if available.
    let mut cached: HashMap<(String, String), f64> = HashMap::new();
    if let Ok(csv) = std::fs::read_to_string("results/table4_diffusion.csv") {
        for line in csv.lines().skip(1) {
            let parts: Vec<&str> = line.split(',').collect();
            if parts.len() == 3 {
                if let Ok(v) = parts[2].parse::<f64>() {
                    cached.insert((parts[0].to_string(), parts[1].to_string()), v);
                }
            }
        }
        if !cached.is_empty() {
            println!("(reusing {} diffusion CRPS entries from results/table4_diffusion.csv)\n", cached.len());
        }
    }

    let mut table =
        Table::new("Table IV: CRPS for spatiotemporal imputation", &["Method", "Setting", "CRPS"]);

    for setting in Setting::all() {
        let data = build_dataset(setting, scale);
        let window_len = if setting.is_aqi() { 36 } else { 24 };
        println!("[{}]", setting.label());

        // V-RIN
        let mut vrin = VrinImputer::new(VrinConfig {
            epochs: scale.rnn_epochs(),
            window_len,
            window_stride: window_len / 2,
            ..Default::default()
        });
        let samples = vrin.sample_ensemble(&data, scale.n_samples(), 77);
        let crps = methods::crps_of_panels(&data, &samples, Split::Test);
        println!("  V-RIN    CRPS {crps:.4}");
        table.row(vec!["V-RIN".into(), setting.label().into(), fmt_metric(crps)]);

        // GP-VAE
        let mut gpvae = GpvaeImputer::new(GpvaeConfig {
            epochs: scale.rnn_epochs(),
            window_len,
            window_stride: window_len / 2,
            ..Default::default()
        });
        let samples = gpvae.sample_ensemble(&data, scale.n_samples(), 78);
        let crps = methods::crps_of_panels(&data, &samples, Split::Test);
        println!("  GP-VAE   CRPS {crps:.4}");
        table.row(vec!["GP-VAE".into(), setting.label().into(), fmt_metric(crps)]);

        // CSDI and PriSTI (cached from table3 when possible)
        for variant in [ModelVariant::Csdi, ModelVariant::Pristi] {
            let key = (variant.label().to_string(), setting.label().to_string());
            let crps = if let Some(&v) = cached.get(&key) {
                v
            } else {
                let out = methods::run_diffusion(
                    variant,
                    &data,
                    setting,
                    scale,
                    scale.n_samples(),
                    false,
                );
                methods::crps_of_panels(&data, &out.sample_panels, Split::Test)
            };
            println!("  {:8} CRPS {crps:.4}", variant.label());
            table.row(vec![variant.label().into(), setting.label().into(), fmt_metric(crps)]);
        }
    }

    println!();
    table.print();
    table.save_csv("table4").expect("write table4.csv");
    println!("\nwrote results/table4.csv");
}
