//! **Table VI** — ablation study: mix-STI, w/o CF, w/o spa, w/o tem,
//! w/o MPNN, w/o Attn vs. full PriSTI, on AQI-36/SF and METR-LA block/point
//! (MAE), mirroring the paper's three columns.
//!
//! Each variant uses half the Table III training budget; relative ordering —
//! not absolute MAE — is the quantity of interest.

use pristi_bench::report::fmt_metric;
use pristi_bench::{build_dataset, methods, Scale, Setting, Table};
use pristi_core::ModelVariant;
use st_baselines::evaluate_panel;
use st_data::dataset::Split;

fn main() {
    let scale = Scale::from_env();
    println!("Table VI reproduction (scale = {scale})\n");
    // The AQI column is the most budget-hungry (dense windows, T=672); at
    // the default fast scale we reproduce the two traffic columns, which
    // carry the paper's headline ablation signals (w/o spa / w/o tem are
    // catastrophic, w/o MPNN / w/o Attn mild). Set PRISTI_SCALE=full for all
    // three columns.
    let settings = if matches!(scale, Scale::Full) {
        vec![Setting::AqiSimulatedFailure, Setting::MetrLaBlock, Setting::MetrLaPoint]
    } else {
        vec![Setting::MetrLaBlock, Setting::MetrLaPoint]
    };

    let mut header: Vec<&str> = vec!["Variant"];
    header.extend(settings.iter().map(|s| s.label()));
    let mut table = Table::new("Table VI: ablation studies (MAE)", &header);

    let mut rows: Vec<(String, Vec<f64>)> =
        ModelVariant::ablation_rows().iter().map(|v| (v.label().to_string(), Vec::new())).collect();

    for &setting in &settings {
        let data = build_dataset(setting, scale);
        println!("[{}]", setting.label());
        for (vi, variant) in ModelVariant::ablation_rows().into_iter().enumerate() {
            let mcfg = methods::diffusion_model_cfg(scale, setting, variant);
            let mut tcfg = methods::diffusion_train_cfg(scale, setting);
            tcfg.epochs = (tcfg.epochs / 3).max(1);
            let out = methods::run_diffusion_with(variant, &data, mcfg, tcfg, 6, false);
            let err = evaluate_panel(&data, &out.panel_median, Split::Test);
            println!(
                "  {:8} MAE {:8.3}  (train {:.0}s)",
                variant.label(),
                err.mae(),
                out.train_secs
            );
            rows[vi].1.push(err.mae());
        }
    }

    for (label, maes) in rows {
        let mut cells = vec![label];
        cells.extend(maes.iter().map(|&m| fmt_metric(m)));
        table.row(cells);
    }

    println!();
    table.print();
    table.save_csv("table6").expect("write table6.csv");
    println!("\nwrote results/table6.csv");
}
