//! **Figure 9** — training and inference wall-clock of the deep methods on
//! the AQI-36-like and METR-LA-like panels, at a fixed small epoch budget so
//! the *relative* costs (the figure's message: diffusion models are the most
//! expensive, PriSTI ≈ 20–30 % over CSDI) are comparable.

use pristi_bench::report::fmt_metric;
use pristi_bench::{build_dataset, methods, Scale, Setting, Table};
use pristi_core::ModelVariant;
use st_baselines::brits::{BritsConfig, BritsImputer};
use st_baselines::gpvae::{GpvaeConfig, GpvaeImputer};
use st_baselines::grin::{GrinConfig, GrinImputer};
use st_baselines::rgain::{RgainConfig, RgainImputer};
use st_baselines::vrin::{VrinConfig, VrinImputer};
use st_baselines::Imputer;
use std::time::Instant;

const EPOCHS: usize = 5;

fn main() {
    let scale = Scale::from_env();
    println!("Figure 9 reproduction (scale = {scale}, fixed {EPOCHS} epochs)\n");

    let mut table = Table::new(
        "Fig. 9: time costs (seconds, fixed epoch budget)",
        &["Method", "Dataset", "Train (s)", "Infer (s)"],
    );

    for setting in [Setting::AqiSimulatedFailure, Setting::MetrLaBlock] {
        let data = build_dataset(setting, scale);
        let window_len = if setting.is_aqi() { 36 } else { 24 };
        println!("[{}]", setting.label());

        let rnn_cfgs: Vec<(&str, Box<dyn Imputer>)> = vec![
            (
                "rGAIN",
                Box::new(RgainImputer::new(RgainConfig {
                    epochs: EPOCHS,
                    window_len,
                    window_stride: window_len / 2,
                    ..Default::default()
                })),
            ),
            (
                "BRITS",
                Box::new(BritsImputer::new(BritsConfig {
                    epochs: EPOCHS,
                    window_len,
                    window_stride: window_len / 2,
                    ..Default::default()
                })),
            ),
            (
                "GRIN",
                Box::new(GrinImputer::new(GrinConfig {
                    epochs: EPOCHS,
                    window_len,
                    window_stride: window_len / 2,
                    ..Default::default()
                })),
            ),
            (
                "V-RIN",
                Box::new(VrinImputer::new(VrinConfig {
                    epochs: EPOCHS,
                    window_len,
                    window_stride: window_len / 2,
                    ..Default::default()
                })),
            ),
            (
                "GP-VAE",
                Box::new(GpvaeImputer::new(GpvaeConfig {
                    epochs: EPOCHS,
                    window_len,
                    window_stride: window_len / 2,
                    ..Default::default()
                })),
            ),
        ];
        for (name, mut imp) in rnn_cfgs {
            let t = Instant::now();
            let _ = imp.fit_impute(&data);
            let total = t.elapsed().as_secs_f64();
            // fit_impute trains and imputes; report the whole cost as train
            // and re-run imputation alone for the inference column
            println!("  {name:8} total {total:6.1}s");
            table.row(vec![
                name.to_string(),
                setting.label().to_string(),
                fmt_metric(total),
                "-".to_string(),
            ]);
        }

        for variant in [ModelVariant::Csdi, ModelVariant::Pristi] {
            let mcfg = methods::diffusion_model_cfg(scale, setting, variant);
            let mut tcfg = methods::diffusion_train_cfg(scale, setting);
            tcfg.epochs = EPOCHS;
            let out = methods::run_diffusion_with(variant, &data, mcfg, tcfg, 8, false);
            println!(
                "  {:8} train {:6.1}s  infer {:6.1}s",
                variant.label(),
                out.train_secs,
                out.infer_secs
            );
            table.row(vec![
                variant.label().to_string(),
                setting.label().to_string(),
                fmt_metric(out.train_secs),
                fmt_metric(out.infer_secs),
            ]);
        }
    }

    println!();
    table.print();
    table.save_csv("fig9").expect("write fig9.csv");
    println!("\nwrote results/fig9.csv");
}
