//! **Figure 8** — sensitivity of PriSTI to its key hyperparameters on the
//! METR-LA-like point-missing setting: channel size `d`, maximum noise level
//! `β_T`, and number of virtual nodes `k`.

use pristi_bench::report::fmt_metric;
use pristi_bench::{build_dataset, methods, Scale, Setting, Table};
use pristi_core::ModelVariant;
use st_baselines::evaluate_panel;
use st_data::dataset::Split;

fn main() {
    let scale = Scale::from_env();
    println!("Figure 8 reproduction (scale = {scale})\n");
    let setting = Setting::MetrLaPoint;
    let data = build_dataset(setting, scale);

    let mut table =
        Table::new("Fig. 8: hyperparameter sensitivity (MAE)", &["Parameter", "Value", "MAE"]);

    let run = |d_override: Option<usize>, beta_max: Option<f64>, k: Option<usize>| -> f64 {
        let mut mcfg = methods::diffusion_model_cfg(scale, setting, ModelVariant::Pristi);
        if let Some(d) = d_override {
            mcfg.d_model = d;
            // keep heads compatible
            mcfg.heads = mcfg.heads.min(d).max(1);
            while d % mcfg.heads != 0 {
                mcfg.heads -= 1;
            }
        }
        if let Some(b) = beta_max {
            mcfg.beta_max = b;
        }
        if let Some(k) = k {
            mcfg.virtual_nodes = k;
        }
        let mut tcfg = methods::diffusion_train_cfg(scale, setting);
        tcfg.epochs = (tcfg.epochs / 4).max(1);
        let out = methods::run_diffusion_with(ModelVariant::Pristi, &data, mcfg, tcfg, 4, false);
        evaluate_panel(&data, &out.panel_median, Split::Test).mae()
    };

    println!("sweeping channel size d...");
    for d in [8usize, 16, 24] {
        let mae = run(Some(d), None, None);
        println!("  d = {d:3}  MAE {mae:.3}");
        table.row(vec!["d".into(), d.to_string(), fmt_metric(mae)]);
    }
    println!("sweeping maximum noise level beta_T...");
    for b in [0.05f64, 0.2, 0.4] {
        let mae = run(None, Some(b), None);
        println!("  beta_T = {b:<4}  MAE {mae:.3}");
        table.row(vec!["beta_T".into(), b.to_string(), fmt_metric(mae)]);
    }
    println!("sweeping virtual nodes k...");
    for k in [4usize, 8, 16] {
        let mae = run(None, None, Some(k));
        println!("  k = {k:3}  MAE {mae:.3}");
        table.row(vec!["k".into(), k.to_string(), fmt_metric(mae)]);
    }

    println!();
    table.print();
    table.save_csv("fig8").expect("write fig8.csv");
    println!("\nwrote results/fig8.csv");
}
