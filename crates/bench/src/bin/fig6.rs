//! **Figure 6** — probabilistic-imputation case study: for five sensors of
//! the AQI-36-like panel over one aligned test window, emit the observations,
//! ground truth of missing values, imputation median and the 0.05–0.95
//! quantile band, as CSV plus an ASCII sketch.

use pristi_bench::{build_dataset, methods, write_csv, Scale, Setting};
use pristi_core::{impute, ImputeOptions, Sampler};
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_data::dataset::Split;

fn main() {
    let scale = Scale::from_env();
    println!("Figure 6 reproduction (scale = {scale})\n");
    let setting = Setting::AqiSimulatedFailure;
    let data = build_dataset(setting, scale);

    // Train PriSTI at half budget (case study is qualitative).
    let mcfg = methods::diffusion_model_cfg(scale, setting, pristi_core::ModelVariant::Pristi);
    let mut tcfg = methods::diffusion_train_cfg(scale, setting);
    tcfg.epochs = (tcfg.epochs / 2).max(1);
    let trained = pristi_core::train::train(&data, mcfg, &tcfg).expect("fig6 training config is valid");
    println!("trained PriSTI ({} params)", trained.model.n_params());

    // Aligned window in the test split with plenty of eval positions.
    let windows = data.windows(Split::Test, tcfg.window_len, tcfg.window_len);
    let w = windows
        .iter()
        .max_by(|a, b| a.eval.sum().partial_cmp(&b.eval.sum()).unwrap())
        .expect("no test windows");
    let mut rng = StdRng::seed_from_u64(66);
    let res = impute(
        &trained,
        w,
        &ImputeOptions { n_samples: 10, sampler: Sampler::Ddpm },
        &mut rng,
    )
    .expect("fig6 window shape matches the trained model");
    let median = res.median();
    let q05 = res.quantile(0.05);
    let q95 = res.quantile(0.95);

    // Five sensors: the best-connected one and its four nearest neighbours
    // (the paper also shows a geographically close group).
    let center = data.graph.most_connected();
    let mut sensors = vec![center];
    sensors.extend(data.graph.nearest_neighbors(center, 4));

    let l = w.len();
    let mut csv = String::from("sensor,t,truth,observed,median,q05,q95\n");
    for &s in &sensors {
        for t in 0..l {
            csv.push_str(&format!(
                "{s},{t},{:.2},{},{:.2},{:.2},{:.2}\n",
                w.values.at(&[s, t]),
                if w.cond_mask().at(&[s, t]) > 0.0 { 1 } else { 0 },
                median.at(&[s, t]),
                q05.at(&[s, t]),
                q95.at(&[s, t]),
            ));
        }
    }
    write_csv("fig6", &csv).expect("write fig6.csv");

    // ASCII sketch for the first two sensors.
    for &s in sensors.iter().take(2) {
        println!("\nsensor {s} (x = observed, o = hidden truth, ~ = median, . = 5–95% band)");
        ascii_band(w, &median, &q05, &q95, s);
    }

    // Quantify band calibration: fraction of hidden truths inside the band.
    let mut inside = 0.0;
    let mut total = 0.0;
    for &s in &sensors {
        for t in 0..l {
            if w.eval.at(&[s, t]) > 0.0 {
                total += 1.0;
                let v = w.values.at(&[s, t]);
                if v >= q05.at(&[s, t]) && v <= q95.at(&[s, t]) {
                    inside += 1.0;
                }
            }
        }
    }
    if total > 0.0 {
        println!(
            "\nband coverage: {:.0}% of hidden truths inside the 5–95% band ({} points)",
            100.0 * inside / total,
            total
        );
    }
    println!("\nwrote results/fig6.csv");
}

fn ascii_band(
    w: &st_data::Window,
    median: &st_tensor::NdArray,
    q05: &st_tensor::NdArray,
    q95: &st_tensor::NdArray,
    s: usize,
) {
    let l = w.len();
    let rows = 12;
    let mut lo = f32::MAX;
    let mut hi = f32::MIN;
    for t in 0..l {
        lo = lo.min(q05.at(&[s, t])).min(w.values.at(&[s, t]));
        hi = hi.max(q95.at(&[s, t])).max(w.values.at(&[s, t]));
    }
    let span = (hi - lo).max(1e-6);
    let mut grid = vec![vec![' '; l]; rows];
    let to_row = |v: f32| -> usize {
        (((hi - v) / span) * (rows - 1) as f32).round().clamp(0.0, (rows - 1) as f32) as usize
    };
    for t in 0..l {
        let (r5, r95) = (to_row(q05.at(&[s, t])), to_row(q95.at(&[s, t])));
        for row in grid.iter_mut().take(r95.max(r5) + 1).skip(r95.min(r5)) {
            row[t] = '.';
        }
        grid[to_row(median.at(&[s, t]))][t] = '~';
        let truth = w.values.at(&[s, t]);
        grid[to_row(truth)][t] = if w.cond_mask().at(&[s, t]) > 0.0 { 'x' } else { 'o' };
    }
    for (ri, row) in grid.iter().enumerate() {
        let label = if ri == 0 {
            format!("{hi:7.1} |")
        } else if ri == rows - 1 {
            format!("{lo:7.1} |")
        } else {
            "        |".to_string()
        };
        println!("{label}{}", row.iter().collect::<String>());
    }
}
