//! **Figure 7** — imputation for completely unobserved sensors (virtual
//! kriging): mask *every* observation of the best- and worst-connected
//! stations of the AQI-36-like network during training, then reconstruct
//! their series purely from the other stations and the geography. PriSTI is
//! compared with GRIN (the only baseline that can use geographic structure).

use pristi_bench::report::fmt_metric;
use pristi_bench::{build_dataset, methods, Scale, Setting, Table};
use pristi_core::ModelVariant;
use st_baselines::grin::{GrinConfig, GrinImputer};
use st_baselines::Imputer;
use st_data::missing::mask_entire_sensors;
use st_metrics::MaskedErrors;
use st_tensor::NdArray;

fn main() {
    let scale = Scale::from_env();
    println!("Figure 7 reproduction (scale = {scale})\n");
    let setting = Setting::AqiSimulatedFailure;
    let mut data = build_dataset(setting, scale);

    let hi = data.graph.most_connected();
    let lo = data.graph.least_connected();
    println!("best-connected station: {hi}, worst-connected station: {lo}");

    // Hide the two stations everywhere (training and evaluation), on top of
    // the existing simulated-failure mask.
    let failed = mask_entire_sensors(&data.observed_mask, &[hi, lo]);
    data.eval_mask = data.eval_mask.zip_map(&failed, |a, b| if a > 0.0 || b > 0.0 { 1.0 } else { 0.0 });
    data.check_invariants();

    // PriSTI (full-panel reconstruction of the failed stations), half budget.
    let mcfg = methods::diffusion_model_cfg(scale, setting, ModelVariant::Pristi);
    let mut tcfg = methods::diffusion_train_cfg(scale, setting);
    tcfg.epochs = (tcfg.epochs / 2).max(1);
    let out = methods::run_diffusion_with(ModelVariant::Pristi, &data, mcfg, tcfg, 6, true);
    println!("PriSTI trained ({:.0}s) and imputed ({:.0}s)", out.train_secs, out.infer_secs);

    // GRIN comparison.
    let mut grin = GrinImputer::new(GrinConfig {
        epochs: scale.rnn_epochs(),
        window_len: 36,
        window_stride: 18,
        ..Default::default()
    });
    let grin_panel = grin.fit_impute(&data);

    let mut table = Table::new(
        "Fig. 7: MAE on fully unobserved stations",
        &["Station", "Connectivity", "PriSTI", "GRIN"],
    );
    for (station, kind) in [(hi, "highest"), (lo, "lowest")] {
        let p_mae = station_mae(&data, &out.panel_median, &failed, station);
        let g_mae = station_mae(&data, &grin_panel, &failed, station);
        println!("station {station} ({kind}): PriSTI MAE {p_mae:.2}, GRIN MAE {g_mae:.2}");
        table.row(vec![
            station.to_string(),
            kind.to_string(),
            fmt_metric(p_mae),
            fmt_metric(g_mae),
        ]);
    }

    println!();
    table.print();
    table.save_csv("fig7").expect("write fig7.csv");
    println!("\nwrote results/fig7.csv");
}

fn station_mae(
    data: &st_data::SpatioTemporalDataset,
    panel: &NdArray,
    failed: &NdArray,
    station: usize,
) -> f64 {
    let n = data.n_nodes();
    let mut acc = MaskedErrors::new();
    for t in 0..data.n_steps() {
        let idx = t * n + station;
        acc.update(
            &[panel.data()[idx]],
            &[data.values.data()[idx]],
            &[failed.data()[idx]],
        );
    }
    acc.mae()
}
