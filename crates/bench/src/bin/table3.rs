//! **Table III** — MAE and MSE of every imputation method across the five
//! dataset settings (AQI-36/simulated-failure, METR-LA and PEMS-BAY under
//! block and point missing).
//!
//! Also writes the PriSTI/CSDI CRPS values to `results/table4_diffusion.csv`
//! so the Table IV binary can reuse these (expensive) runs.

use pristi_bench::report::fmt_metric;
use pristi_bench::{build_dataset, methods, Scale, Setting, Table};
use pristi_core::ModelVariant;
use st_baselines::evaluate_panel;
use st_data::dataset::Split;

fn main() {
    let scale = Scale::from_env();
    println!("Table III reproduction (scale = {scale})\n");

    let mut table = Table::new(
        "Table III: MAE / MSE for spatiotemporal imputation",
        &["Method", "Setting", "MAE", "MSE"],
    );
    let mut crps_rows: Vec<(String, String, f64)> = Vec::new();

    for setting in Setting::all() {
        let data = build_dataset(setting, scale);
        println!(
            "[{}] T={} N={} eval-rate={:.1}%",
            setting.label(),
            data.n_steps(),
            data.n_nodes(),
            100.0 * st_data::missing::eval_rate(&data.observed_mask, &data.eval_mask)
        );
        for mut imp in methods::deterministic_imputers(scale, setting) {
            let (panel, secs) = methods::run_deterministic(imp.as_mut(), &data);
            let err = evaluate_panel(&data, &panel, Split::Test);
            println!(
                "  {:8} MAE {:8.3}  MSE {:10.2}  ({secs:.1}s)",
                imp.name(),
                err.mae(),
                err.mse()
            );
            table.row(vec![
                imp.name().to_string(),
                setting.label().to_string(),
                fmt_metric(err.mae()),
                fmt_metric(err.mse()),
            ]);
        }
        for variant in [ModelVariant::Csdi, ModelVariant::Pristi] {
            let out =
                methods::run_diffusion(variant, &data, setting, scale, scale.n_samples(), false);
            let err = evaluate_panel(&data, &out.panel_median, Split::Test);
            let crps = methods::crps_of_panels(&data, &out.sample_panels, Split::Test);
            println!(
                "  {:8} MAE {:8.3}  MSE {:10.2}  CRPS {:.4}  (train {:.0}s, infer {:.0}s)",
                variant.label(),
                err.mae(),
                err.mse(),
                crps,
                out.train_secs,
                out.infer_secs
            );
            table.row(vec![
                variant.label().to_string(),
                setting.label().to_string(),
                fmt_metric(err.mae()),
                fmt_metric(err.mse()),
            ]);
            crps_rows.push((variant.label().to_string(), setting.label().to_string(), crps));
        }
    }

    println!();
    table.print();
    table.save_csv("table3").expect("write table3.csv");

    let mut crps_csv = String::from("Method,Setting,CRPS\n");
    for (m, s, c) in &crps_rows {
        crps_csv.push_str(&format!("{m},{s},{c:.4}\n"));
    }
    pristi_bench::write_csv("table4_diffusion", &crps_csv).expect("write table4_diffusion.csv");
    println!("\nwrote results/table3.csv and results/table4_diffusion.csv");
}
