//! **Table V** — downstream forecasting after imputation on the AQI-36-like
//! panel: impute all data with the top methods (BRITS, GRIN, CSDI, PriSTI),
//! train a Graph-WaveNet-style forecaster (12-in → 12-out) on each imputed
//! panel (70/10/20 split) and report test MAE / RMSE against the ground
//! truth. `Ori.` is the raw panel with missing values zero-filled.

use pristi_bench::report::fmt_metric;
use pristi_bench::{build_dataset, methods, Scale, Setting, Table};
use pristi_core::ModelVariant;
use st_baselines::brits::{BritsConfig, BritsImputer};
use st_baselines::grin::{GrinConfig, GrinImputer};
use st_baselines::{visible, Imputer};
use st_forecast::{evaluate_forecaster, train_forecaster, ForecastConfig};
use st_tensor::NdArray;

fn main() {
    let scale = Scale::from_env();
    println!("Table V reproduction (scale = {scale})\n");
    let setting = Setting::AqiSimulatedFailure;
    let data = build_dataset(setting, scale);

    let mut panels: Vec<(String, NdArray)> = Vec::new();

    // Ori.: no imputation (missing values zero-filled).
    let (vals, _) = visible(&data);
    panels.push(("Ori.".into(), vals));

    let mut brits = BritsImputer::new(BritsConfig {
        epochs: scale.rnn_epochs(),
        window_len: 36,
        window_stride: 18,
        ..Default::default()
    });
    panels.push(("BRITS".into(), brits.fit_impute(&data)));
    println!("BRITS imputed");

    let mut grin = GrinImputer::new(GrinConfig {
        epochs: scale.rnn_epochs(),
        window_len: 36,
        window_stride: 18,
        ..Default::default()
    });
    panels.push(("GRIN".into(), grin.fit_impute(&data)));
    println!("GRIN imputed");

    for variant in [ModelVariant::Csdi, ModelVariant::Pristi] {
        // Full-panel imputation (the downstream task consumes every split);
        // half the usual epochs keeps this binary's budget in check.
        let mcfg = methods::diffusion_model_cfg(scale, setting, variant);
        let mut tcfg = methods::diffusion_train_cfg(scale, setting);
        tcfg.epochs = (tcfg.epochs / 3).max(1);
        let out = methods::run_diffusion_with(variant, &data, mcfg, tcfg, 4, true);
        println!("{} imputed (train {:.0}s, infer {:.0}s)", variant.label(), out.train_secs, out.infer_secs);
        panels.push((variant.label().to_string(), out.panel_median));
    }

    let mut table =
        Table::new("Table V: prediction on AQI-36-like after imputation", &["Imputer", "MAE", "RMSE"]);
    let fcfg = ForecastConfig { epochs: scale.rnn_epochs().min(10), ..Default::default() };
    for (name, panel) in &panels {
        let model = train_forecaster(panel, &data.graph, fcfg.clone());
        let (mae, rmse) = evaluate_forecaster(&model, panel, &data.values);
        println!("{name:8} forecast MAE {mae:.2}  RMSE {rmse:.2}");
        table.row(vec![name.clone(), fmt_metric(mae), fmt_metric(rmse)]);
    }

    println!();
    table.print();
    table.save_csv("table5").expect("write table5.csv");
    println!("\nwrote results/table5.csv");
}
