//! **Figure 5** — imputation MAE under increasing missing rate (10–90 %) on
//! the METR-LA-like panel, block and point patterns, for BRITS, GRIN, CSDI
//! and PriSTI.
//!
//! Following the paper's protocol, each model is trained once per pattern
//! with its standard strategy, then evaluated with the *test data* masked at
//! increasing rates (sparser blocks of 1–4 h for the block pattern, uniform
//! point drops for the point pattern).

use pristi_bench::report::fmt_metric;
use pristi_bench::{build_dataset, methods, Scale, Setting, Table};
use pristi_core::ModelVariant;
use st_baselines::brits::{BritsConfig, BritsImputer};
use st_baselines::grin::{GrinConfig, GrinImputer};
use st_baselines::{evaluate_panel, Imputer};
use st_data::dataset::Split;
use st_data::missing::{inject_block_missing, inject_point_missing};
use st_data::SpatioTemporalDataset;

const RATES: [f64; 5] = [0.1, 0.25, 0.5, 0.75, 0.9];

/// Build the rate-`r` evaluation variant of the dataset.
fn with_rate(base: &SpatioTemporalDataset, block: bool, rate: f64, seed: u64) -> SpatioTemporalDataset {
    let mut d = base.clone();
    d.eval_mask = if block {
        // longer outages as the rate grows (paper: lengths in [12, 48])
        let fault = rate / (30.0 * (1.0 - rate).max(0.02));
        inject_block_missing(&d.observed_mask, 0.05 * rate, fault.min(0.5), 12, 48, seed)
    } else {
        inject_point_missing(&d.observed_mask, rate, seed)
    };
    d
}

fn main() {
    let scale = Scale::from_env();
    println!("Figure 5 reproduction (scale = {scale})\n");

    let mut table = Table::new(
        "Fig. 5: MAE vs missing rate on METR-LA-like",
        &["Pattern", "Method", "10%", "25%", "50%", "75%", "90%"],
    );

    for (setting, block) in [(Setting::MetrLaBlock, true), (Setting::MetrLaPoint, false)] {
        let data = build_dataset(setting, scale);
        let pattern = if block { "Block" } else { "Point" };
        println!("[{pattern}] training models once each...");

        // Train once per model on the base dataset.
        let mut brits = BritsImputer::new(BritsConfig {
            epochs: scale.rnn_epochs(),
            window_len: 24,
            window_stride: 12,
            ..Default::default()
        });
        brits.fit_impute(&data);
        let mut grin = GrinImputer::new(GrinConfig {
            epochs: scale.rnn_epochs(),
            window_len: 24,
            window_stride: 12,
            ..Default::default()
        });
        grin.fit_impute(&data);
        let mk = |variant| {
            let mcfg = methods::diffusion_model_cfg(scale, setting, variant);
            let mut tcfg = methods::diffusion_train_cfg(scale, setting);
            tcfg.epochs = (tcfg.epochs / 2).max(1);
            methods::run_diffusion_with(variant, &data, mcfg, tcfg, 1, false)
        };
        let csdi = mk(ModelVariant::Csdi);
        let pristi = mk(ModelVariant::Pristi);
        println!("  trained (PriSTI {:.0}s, CSDI {:.0}s)", pristi.train_secs, csdi.train_secs);

        let mut rows: Vec<(String, Vec<f64>)> = ["BRITS", "GRIN", "CSDI", "PriSTI"]
            .iter()
            .map(|m| (m.to_string(), Vec::new()))
            .collect();
        for (ri, &rate) in RATES.iter().enumerate() {
            let dr = with_rate(&data, block, rate, 5000 + ri as u64);
            let maes = [
                evaluate_panel(&dr, &brits.impute_panel(&dr), Split::Test).mae(),
                evaluate_panel(&dr, &grin.impute_panel(&dr), Split::Test).mae(),
                {
                    let (p, _) = methods::impute_panel_with_trained(&csdi.trained, &dr, 4, false);
                    evaluate_panel(&dr, &p, Split::Test).mae()
                },
                {
                    let (p, _) = methods::impute_panel_with_trained(&pristi.trained, &dr, 4, false);
                    evaluate_panel(&dr, &p, Split::Test).mae()
                },
            ];
            println!(
                "  rate {:>3.0}%  BRITS {:.3}  GRIN {:.3}  CSDI {:.3}  PriSTI {:.3}",
                rate * 100.0,
                maes[0],
                maes[1],
                maes[2],
                maes[3]
            );
            for (mi, &mae) in maes.iter().enumerate() {
                rows[mi].1.push(mae);
            }
        }
        for (name, maes) in rows {
            let mut cells = vec![pattern.to_string(), name];
            cells.extend(maes.iter().map(|&m| fmt_metric(m)));
            table.row(cells);
        }
    }

    println!();
    table.print();
    table.save_csv("fig5").expect("write fig5.csv");
    println!("\nwrote results/fig5.csv");
}
