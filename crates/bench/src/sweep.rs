//! Steps-vs-CRPS sweep: accuracy of every few-step solver against the
//! 50-step DDIM reference, on one deterministically trained model.
//!
//! `pristi bench --sweep` trains a small model with a `T = 50` schedule
//! (seeded — the run is bit-reproducible), imputes a handful of held-out
//! windows with each `(solver, steps)` configuration, and reports CRPS and
//! MAE on the evaluation mask, both absolute and as ratios to the 50-step
//! deterministic DDIM reference. The table answers the serve-latency
//! question directly: how few network evaluations can each solver spend
//! before accuracy moves?
//!
//! The sweep is also a gate: the roadmap targets ≤6 network evaluations at
//! pinned accuracy, so `pndm:6` and `refine:4` must stay within
//! [`CRPS_RATIO_TOL`] / [`MAE_RATIO_TOL`] of the reference or
//! [`SweepReport::violations`] is non-empty and the CLI exits nonzero.
//! `scripts/verify.sh` runs the `--quick` variant on every change.

use pristi_core::train::{train, TrainConfig};
use pristi_core::{impute, ImputeOptions, PristiConfig, Result, Sampler, TrainedModel};
use st_data::dataset::{Split, Window};
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_metrics::{crps_ensemble, masked_mae};
use st_rand::{SeedableRng, StdRng};

/// Gated configurations (the roadmap's ≤6-evaluation targets) may exceed the
/// reference CRPS by at most this factor.
pub const CRPS_RATIO_TOL: f64 = 1.10;
/// Gated configurations may exceed the reference MAE by at most this factor.
///
/// Looser than the CRPS tolerance: MAE scores the ensemble *median*, and on
/// the tiny sweep model the median's sampling noise floor is visibly higher
/// than the full ensemble's CRPS — measured full-mode MAE ratios span
/// 1.16–1.34 across few-step configs whose CRPS ratios all sit within 1.09.
pub const MAE_RATIO_TOL: f64 = 1.25;
/// The sweep's reference solver spec: deterministic DDIM over the full
/// 50-step schedule (every few-step configuration is scored against it).
pub const REFERENCE_SPEC: &str = "ddim:50";
/// Solver specs whose rows are gated by the ratio tolerances.
pub const GATED_SPECS: [&str; 2] = ["pndm:6", "refine:4"];

/// Options for [`run_sweep`].
#[derive(Debug, Clone, Copy)]
pub struct SweepOpts {
    /// Fewer epochs, windows and samples — the verify.sh smoke variant.
    pub quick: bool,
    /// Seed for training data, masking, training, and every sampling stream.
    pub seed: u64,
}

impl Default for SweepOpts {
    fn default() -> Self {
        Self { quick: false, seed: 23 }
    }
}

/// One `(solver, steps)` configuration's accuracy.
#[derive(Debug, Clone)]
pub struct SweepRow {
    /// Canonical sampler spec string (`Sampler::to_string`).
    pub spec: String,
    /// Network evaluations the configuration actually spends (grid length,
    /// not the requested step count).
    pub nfe: usize,
    /// CRPS over the evaluation mask of every swept window.
    pub crps: f64,
    /// Median-imputation MAE over the evaluation mask.
    pub mae: f64,
    /// `crps / reference_crps`.
    pub crps_ratio: f64,
    /// `mae / reference_mae`.
    pub mae_ratio: f64,
}

/// Everything a sweep run produced.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The reference row's spec ([`REFERENCE_SPEC`]).
    pub reference: String,
    /// All rows, reference first, then ascending by NFE within each solver.
    pub rows: Vec<SweepRow>,
    /// Human-readable tolerance violations for the gated specs (empty = the
    /// gate passes).
    pub violations: Vec<String>,
}

impl SweepReport {
    /// Render as CSV (`sampler,nfe,crps,mae,crps_ratio,mae_ratio`).
    pub fn to_csv(&self) -> String {
        let mut out = String::from("sampler,nfe,crps,mae,crps_ratio,mae_ratio\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{},{},{:.6},{:.6},{:.4},{:.4}\n",
                r.spec, r.nfe, r.crps, r.mae, r.crps_ratio, r.mae_ratio
            ));
        }
        out
    }

    /// Render an aligned table for stdout.
    pub fn render_table(&self) -> String {
        let mut out = format!(
            "{:<12} {:>4} {:>10} {:>10} {:>11} {:>10}\n",
            "sampler", "nfe", "crps", "mae", "crps_ratio", "mae_ratio"
        );
        for r in &self.rows {
            out.push_str(&format!(
                "{:<12} {:>4} {:>10.4} {:>10.4} {:>11.3} {:>10.3}\n",
                r.spec, r.nfe, r.crps, r.mae, r.crps_ratio, r.mae_ratio
            ));
        }
        out
    }
}

/// The spec strings a sweep evaluates, reference first.
fn sweep_specs(quick: bool) -> Vec<&'static str> {
    if quick {
        vec![REFERENCE_SPEC, "ddpm", "ddim:6", "pndm:6", "refine:4"]
    } else {
        vec![
            REFERENCE_SPEC,
            "ddpm",
            "ddim:2",
            "ddim:4",
            "ddim:6",
            "ddim:8",
            "ddim:12",
            "pndm:2",
            "pndm:4",
            "pndm:6",
            "pndm:8",
            "refine:2",
            "refine:3",
            "refine:4",
            "refine:6",
        ]
    }
}

/// Train the sweep model: the bench tiny architecture, but with the full
/// 50-step schedule so few-step grids have room to differ.
fn train_sweep_model(opts: &SweepOpts) -> Result<(TrainedModel, Vec<Window>)> {
    let mut cfg = PristiConfig::small();
    cfg.d_model = 8;
    cfg.heads = 2;
    cfg.layers = 1;
    cfg.t_steps = 50;
    cfg.time_emb_dim = 8;
    cfg.node_emb_dim = 4;
    cfg.step_emb_dim = 8;
    cfg.virtual_nodes = 4;
    cfg.adaptive_dim = 2;
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 8,
        n_days: 12,
        seed: opts.seed ^ 0x51,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.2, opts.seed ^ 0x52);
    let tc = TrainConfig {
        epochs: if opts.quick { 2 } else { 8 },
        batch_size: 4,
        window_len: 12,
        window_stride: 12,
        seed: opts.seed ^ 0x53,
        ..Default::default()
    };
    let trained = train(&data, cfg, &tc)?;
    let mut windows = data.windows(Split::Test, 12, 12);
    windows.retain(|w| w.eval.data().iter().any(|&v| v > 0.0));
    windows.truncate(if opts.quick { 2 } else { 6 });
    Ok((trained, windows))
}

/// Run the sweep (see the module docs). Deterministic for a given
/// [`SweepOpts`]: training, windows, and every sampling stream derive from
/// `opts.seed` alone.
pub fn run_sweep(opts: &SweepOpts) -> Result<SweepReport> {
    let (trained, windows) = train_sweep_model(opts)?;
    let n_samples = if opts.quick { 4 } else { 32 };

    let specs = sweep_specs(opts.quick);
    let mut rows: Vec<SweepRow> = Vec::with_capacity(specs.len());
    for (ci, spec) in specs.iter().enumerate() {
        let sampler: Sampler = spec.parse()?;
        let nfe = sampler.solver().timesteps(&trained.schedule).len();
        let (mut crps_acc, mut mae_acc) = (0.0, 0.0);
        for (wi, w) in windows.iter().enumerate() {
            // Same per-(config, window) stream for every solver: differences
            // in the table are solver differences, not draw differences.
            let mut rng =
                StdRng::seed_from_u64(opts.seed ^ ((ci as u64) << 32) ^ ((wi as u64) << 8));
            let res = impute(&trained, w, &ImputeOptions { n_samples, sampler }, &mut rng)?;
            crps_acc += crps_ensemble(
                &res.samples_flat(),
                res.n_samples(),
                w.values.data(),
                w.eval.data(),
            );
            mae_acc += masked_mae(res.median().data(), w.values.data(), w.eval.data());
        }
        let nw = windows.len().max(1) as f64;
        rows.push(SweepRow {
            spec: sampler.to_string(),
            nfe,
            crps: crps_acc / nw,
            mae: mae_acc / nw,
            crps_ratio: 0.0,
            mae_ratio: 0.0,
        });
    }

    let (ref_crps, ref_mae) = (rows[0].crps, rows[0].mae);
    for r in &mut rows {
        r.crps_ratio = r.crps / ref_crps;
        r.mae_ratio = r.mae / ref_mae;
    }

    let mut violations = Vec::new();
    for gated in GATED_SPECS {
        let spec: Sampler = gated.parse()?;
        let canonical = spec.to_string();
        match rows.iter().find(|r| r.spec == canonical) {
            Some(r) => {
                if r.crps_ratio > CRPS_RATIO_TOL {
                    violations.push(format!(
                        "{canonical}: CRPS ratio {:.3} exceeds tolerance {CRPS_RATIO_TOL}",
                        r.crps_ratio
                    ));
                }
                if r.mae_ratio > MAE_RATIO_TOL {
                    violations.push(format!(
                        "{canonical}: MAE ratio {:.3} exceeds tolerance {MAE_RATIO_TOL}",
                        r.mae_ratio
                    ));
                }
            }
            None => violations.push(format!("{canonical}: gated spec missing from sweep rows")),
        }
    }

    Ok(SweepReport { reference: rows[0].spec.clone(), rows, violations })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The quick sweep must run end to end, produce the gated rows, and pass
    /// its own tolerance gate (this is the same configuration verify.sh
    /// runs, so a regression fails here first).
    #[test]
    fn quick_sweep_runs_and_gate_passes() {
        let report = run_sweep(&SweepOpts { quick: true, seed: 23 }).unwrap();
        assert_eq!(report.reference, "ddim:50");
        for gated in GATED_SPECS {
            assert!(
                report.rows.iter().any(|r| r.spec == gated),
                "sweep is missing gated row {gated}"
            );
        }
        for r in &report.rows {
            assert!(r.crps.is_finite() && r.crps >= 0.0, "{}: bad CRPS {}", r.spec, r.crps);
            assert!(r.mae.is_finite() && r.mae >= 0.0, "{}: bad MAE {}", r.spec, r.mae);
            assert!(r.nfe >= 1);
        }
        assert!(
            report.violations.is_empty(),
            "quick sweep violates its own gate: {:?}",
            report.violations
        );
        let csv = report.to_csv();
        assert!(csv.starts_with("sampler,nfe,crps,mae"));
        assert_eq!(csv.lines().count(), report.rows.len() + 1);
    }
}
