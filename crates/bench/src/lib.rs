//! # pristi-bench
//!
//! The experiment harness that regenerates every table and figure of the
//! PriSTI paper (see DESIGN.md §3.9 for the experiment index):
//!
//! * `table3` — MAE/MSE of all methods across the five dataset settings;
//! * `table4` — CRPS of the probabilistic methods;
//! * `table5` — downstream forecasting on imputed AQI-36-like data;
//! * `table6` — ablation study (mix-STI, w/o CF / spa / tem / MPNN / Attn);
//! * `fig5` — MAE vs. missing rate (10–90 %), block and point patterns;
//! * `fig6` — case-study quantile bands for selected sensors (CSV + ASCII);
//! * `fig7` — sensor-failure (virtual kriging) on the AQI-36-like panel;
//! * `fig8` — hyperparameter sensitivity (d, β_T, k);
//! * `fig9` — training/inference wall-clock comparison.
//!
//! Every binary honours `PRISTI_SCALE={smoke,fast,full}` (default `fast`) and
//! writes CSV output into `results/`.
//!
//! Beyond the paper tables, [`serve_report`] is the schema-versioned
//! (`st-serve-bench/1`) report model behind `pristi loadtest` /
//! `BENCH_serve.json` — see DESIGN.md §12.

#![warn(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod compare;
pub mod datasets;
pub mod micro;
pub mod methods;
pub mod report;
pub mod scale;
pub mod scaling;
pub mod serve_report;
pub mod sweep;

pub use compare::{compare_reports, extract_metrics, CompareOutcome, CompareRow, Metric};
pub use datasets::{build_dataset, Setting};
pub use methods::{run_deterministic, run_diffusion, DiffusionOutcome};
pub use report::{write_csv, Table};
pub use scale::Scale;
pub use serve_report::{
    percentile, strip_report_timing, validate_serve_report, ServeEntry, ServeReport, ServeTiming,
    SERVE_SCHEMA,
};
pub use sweep::{run_sweep, SweepOpts, SweepReport, SweepRow};
