//! Thread-scaling verdict shared by `pristi profile` and the dispatch-policy
//! regression tests.
//!
//! `pristi profile` re-runs its forward workload pinned to 1 thread and to
//! `st_par::max_threads()` and records per-op totals; the functions here turn
//! that table into the report's verdict. Factored into the library so
//! `crates/bench/tests/dispatch_policy.rs` can assert — against measured op
//! totals — that `fwd.batch_matmul_transb` no longer regresses at tmax now
//! that the per-label `st_par` policy keeps its sub-tile chunks inline.

use std::collections::BTreeMap;

/// Regression flag threshold: tmax is "regressing" when it takes >10 % more
/// wall time than t1 for the same pinned work.
pub const REGRESSION_RATIO: f64 = 1.10;

/// `(op, t1_ns, tmax_ns, ratio)` of the worst regressing op: the largest
/// tmax/t1 ratio among ops big enough to matter (≥1 % of scan-t1 time)
/// whose absolute slowdown `tmax - t1` is also ≥1 % of scan-t1 time.
///
/// The absolute-delta bar keeps measurement noise out of the verdict: when
/// every dispatch in the scan runs inline at both thread counts the two
/// segments execute identical code, and a small op can still jitter past
/// [`REGRESSION_RATIO`] in relative terms without threading having cost
/// anything. An op only earns the verdict when threading measurably moved
/// total runtime.
///
/// Keys are `"phase.kind"` op names, values `(t1_ns, tmax_ns)` totals.
pub fn worst_scaling(scaling: &BTreeMap<String, (u64, u64)>) -> Option<(String, u64, u64, f64)> {
    let t1_total: u64 = scaling.values().map(|&(t1, _)| t1).sum();
    let floor = (t1_total / 100).max(1);
    scaling
        .iter()
        .filter(|(_, &(t1, tmax))| t1 > floor && tmax.saturating_sub(t1) > floor)
        .map(|(op, &(t1, tmax))| (op.clone(), t1, tmax, tmax as f64 / t1.max(1) as f64))
        .max_by(|a, b| a.3.total_cmp(&b.3))
}

/// Whether a tmax/t1 ratio counts as a regression under [`REGRESSION_RATIO`].
pub fn regresses(ratio: f64) -> bool {
    ratio > REGRESSION_RATIO
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(rows: &[(&str, u64, u64)]) -> BTreeMap<String, (u64, u64)> {
        rows.iter().map(|&(op, t1, tmax)| (op.to_string(), (t1, tmax))).collect()
    }

    #[test]
    fn picks_largest_ratio_above_floor() {
        let t = table(&[
            ("fwd.matmul", 1_000_000, 1_050_000),
            ("fwd.batch_matmul_transb", 200_000, 500_000),
            ("fwd.add", 2, 100), // below the 1% floor: ignored
        ]);
        let (op, _, _, ratio) = worst_scaling(&t).unwrap();
        assert_eq!(op, "fwd.batch_matmul_transb");
        assert!(regresses(ratio));
    }

    #[test]
    fn equal_path_totals_do_not_regress() {
        let t = table(&[("fwd.matmul", 1_000_000, 1_000_000)]);
        assert!(worst_scaling(&t).is_none(), "zero delta clears the absolute bar");
    }

    #[test]
    fn relative_jitter_on_a_small_op_is_filtered() {
        // 1.18x on an op whose absolute slowdown is < 1% of scan time is
        // measurement noise, not a threading regression.
        let t = table(&[
            ("fwd.attention_qk", 30_000_000, 29_500_000),
            ("fwd.concat_last", 800_000, 945_000),
        ]);
        assert!(worst_scaling(&t).is_none());
    }

    #[test]
    fn empty_table_has_no_verdict() {
        assert!(worst_scaling(&BTreeMap::new()).is_none());
    }
}
