//! The five benchmark settings of Table III, built from the synthetic
//! generators with the paper's evaluation-mask protocols.

use crate::scale::Scale;
use st_data::generators::{generate_air_quality, generate_traffic, AirQualityConfig, TrafficConfig};
use st_data::missing::{
    inject_block_missing, inject_point_missing, inject_regional_failure,
    inject_simulated_failure,
};
use st_data::SpatioTemporalDataset;

/// A dataset × missing-pattern evaluation setting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// AQI-36-like with the simulated-failure mask (~24.6 %).
    AqiSimulatedFailure,
    /// METR-LA-like with block missing.
    MetrLaBlock,
    /// METR-LA-like with point missing (25 %).
    MetrLaPoint,
    /// PEMS-BAY-like with block missing.
    PemsBayBlock,
    /// PEMS-BAY-like with point missing (25 %).
    PemsBayPoint,
}

impl Setting {
    /// All five Table III columns.
    pub fn all() -> [Setting; 5] {
        [
            Setting::AqiSimulatedFailure,
            Setting::MetrLaBlock,
            Setting::MetrLaPoint,
            Setting::PemsBayBlock,
            Setting::PemsBayPoint,
        ]
    }

    /// Column label matching the paper.
    pub fn label(&self) -> &'static str {
        match self {
            Setting::AqiSimulatedFailure => "AQI-36/SF",
            Setting::MetrLaBlock => "METR-LA/Block",
            Setting::MetrLaPoint => "METR-LA/Point",
            Setting::PemsBayBlock => "PEMS-BAY/Block",
            Setting::PemsBayPoint => "PEMS-BAY/Point",
        }
    }

    /// True for the air-quality setting (different window length, strategy).
    pub fn is_aqi(&self) -> bool {
        matches!(self, Setting::AqiSimulatedFailure)
    }

    /// True for block-missing settings.
    pub fn is_block(&self) -> bool {
        matches!(self, Setting::MetrLaBlock | Setting::PemsBayBlock)
    }
}

/// Build a setting's dataset, with the evaluation mask already injected.
pub fn build_dataset(setting: Setting, scale: Scale) -> SpatioTemporalDataset {
    let mut data = match setting {
        Setting::AqiSimulatedFailure => generate_air_quality(&AirQualityConfig {
            n_days: scale.aqi_days(),
            ..Default::default()
        }),
        Setting::MetrLaBlock | Setting::MetrLaPoint => generate_traffic(&TrafficConfig {
            n_nodes: scale.metr_nodes(),
            n_days: scale.traffic_days(),
            ..TrafficConfig::metr_la()
        }),
        Setting::PemsBayBlock | Setting::PemsBayPoint => generate_traffic(&TrafficConfig {
            n_nodes: scale.bay_nodes(),
            n_days: scale.traffic_days(),
            ..TrafficConfig::pems_bay()
        }),
    };
    data.eval_mask = match setting {
        // AQI: simulated failure at the paper's 24.6 % rate — half regionally
        // correlated outages (whole clusters failing together, as in the real
        // Yi et al. replay), half per-sensor bursts.
        Setting::AqiSimulatedFailure => {
            let regional = inject_regional_failure(
                &data.observed_mask,
                &data.graph.coords,
                0.14,
                24.0,
                12.0,
                9001,
            );
            let solo = inject_simulated_failure(&data.observed_mask, 0.13, 24.0, 9004);
            regional.zip_map(&solo, |a, b| if a > 0.0 || b > 0.0 { 1.0 } else { 0.0 })
        }
        // Traffic block: 5 % points + 1–4 h outages at 0.15 % (paper protocol).
        Setting::MetrLaBlock | Setting::PemsBayBlock => {
            inject_block_missing(&data.observed_mask, 0.05, 0.0015, 12, 48, 9002)
        }
        // Traffic point: 25 % uniform.
        Setting::MetrLaPoint | Setting::PemsBayPoint => {
            inject_point_missing(&data.observed_mask, 0.25, 9003)
        }
    };
    data.check_invariants();
    data
}

#[cfg(test)]
mod tests {
    use super::*;
    use st_data::missing::eval_rate;

    #[test]
    fn all_settings_build_at_smoke_scale() {
        for s in Setting::all() {
            let d = build_dataset(s, Scale::Smoke);
            d.check_invariants();
            let rate = eval_rate(&d.observed_mask, &d.eval_mask);
            assert!(rate > 0.02, "{s:?} eval rate too low: {rate}");
        }
    }

    #[test]
    fn point_rate_near_25_percent() {
        let d = build_dataset(Setting::MetrLaPoint, Scale::Smoke);
        let rate = eval_rate(&d.observed_mask, &d.eval_mask);
        assert!((rate - 0.25).abs() < 0.03, "point rate {rate}");
    }

    #[test]
    fn labels_unique() {
        let labels: Vec<_> = Setting::all().iter().map(|s| s.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }
}
