//! Experiment scale profiles.
//!
//! The paper trains 200–300 epochs on months of data with a GPU; this
//! harness reproduces the experiment *shapes* on a CPU. `PRISTI_SCALE`
//! selects how much compute to spend:
//!
//! * `smoke` — seconds; sanity-checks that every pipeline runs end to end;
//! * `fast` (default) — minutes; enough training for the paper's method
//!   ordering to emerge;
//! * `full` — tens of minutes; larger panels and more epochs/samples.

use std::fmt;

/// Compute budget for an experiment run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-scale smoke test.
    Smoke,
    /// Default minutes-scale run.
    Fast,
    /// Extended run.
    Full,
}

impl Scale {
    /// Read from the `PRISTI_SCALE` environment variable.
    pub fn from_env() -> Self {
        match std::env::var("PRISTI_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "smoke" => Scale::Smoke,
            "full" => Scale::Full,
            _ => Scale::Fast,
        }
    }

    /// Days of synthetic data for the air-quality panel.
    pub fn aqi_days(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Fast => 28,
            Scale::Full => 56,
        }
    }

    /// Days of synthetic data for the traffic panels.
    pub fn traffic_days(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Fast => 6,
            Scale::Full => 14,
        }
    }

    /// Node count for the METR-LA-like panel (paper: 207).
    pub fn metr_nodes(self) -> usize {
        match self {
            Scale::Smoke => 12,
            Scale::Fast => 24,
            Scale::Full => 48,
        }
    }

    /// Node count for the PEMS-BAY-like panel (paper: 325).
    pub fn bay_nodes(self) -> usize {
        match self {
            Scale::Smoke => 14,
            Scale::Fast => 28,
            Scale::Full => 56,
        }
    }

    /// Diffusion-model training epochs.
    pub fn diffusion_epochs(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Fast => 45,
            Scale::Full => 100,
        }
    }

    /// Recurrent-baseline training epochs.
    pub fn rnn_epochs(self) -> usize {
        match self {
            Scale::Smoke => 2,
            Scale::Fast => 15,
            Scale::Full => 40,
        }
    }

    /// Posterior samples for probabilistic evaluation (paper: 100).
    pub fn n_samples(self) -> usize {
        match self {
            Scale::Smoke => 4,
            Scale::Fast => 12,
            Scale::Full => 32,
        }
    }

    /// Diffusion steps `T` (paper: 50 traffic / 100 AQI).
    pub fn t_steps(self) -> usize {
        match self {
            Scale::Smoke => 10,
            Scale::Fast => 35,
            Scale::Full => 50,
        }
    }
}

impl fmt::Display for Scale {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scale::Smoke => write!(f, "smoke"),
            Scale::Fast => write!(f, "fast"),
            Scale::Full => write!(f, "full"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_of_budgets() {
        assert!(Scale::Smoke.aqi_days() < Scale::Fast.aqi_days());
        assert!(Scale::Fast.aqi_days() < Scale::Full.aqi_days());
        assert!(Scale::Smoke.diffusion_epochs() < Scale::Full.diffusion_epochs());
        assert!(Scale::Smoke.n_samples() < Scale::Full.n_samples());
    }

    #[test]
    fn display_round_trip() {
        assert_eq!(Scale::Fast.to_string(), "fast");
        assert_eq!(Scale::Smoke.to_string(), "smoke");
    }
}
