//! Bench regression comparison: diff two bench reports and flag entries whose
//! timings regressed beyond a noise threshold.
//!
//! Backs `pristi bench --compare OLD,NEW`, the gate `scripts/verify.sh` runs
//! against the committed `results/BENCH_micro_baseline.json`. Two report
//! schemas are auto-detected from the `"schema"` tag:
//!
//! * `st-bench/1` (`BENCH_micro.json`, see `benches/micro.rs`) — one
//!   `ns_per_iter` metric per entry;
//! * `st-serve-bench/1` (`BENCH_serve.json`, see [`crate::serve_report`]) —
//!   `timing.p50_ms` and `timing.p99_ms` per entry.
//!
//! An entry **regresses** when `new > old × (1 + threshold/100)`. An entry
//! present in the old report but missing from the new one is always a
//! failure (a silently dropped benchmark is how regressions hide); entries
//! only in the new report are reported but don't fail the comparison.

use st_obs::json::{parse, Json};

/// One metric extracted from a report entry: `(entry name, metric name,
/// value)`. Serve reports contribute multiple metrics per entry.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Entry name (`attention_forward_backward_8x24x32`, `closed_loop_w1`…).
    pub name: String,
    /// Metric key within the entry (`ns_per_iter`, `p50_ms`, `p99_ms`).
    pub metric: &'static str,
    /// The measured value.
    pub value: f64,
}

/// One old-vs-new comparison row.
#[derive(Debug, Clone)]
pub struct CompareRow {
    /// Entry name.
    pub name: String,
    /// Metric key.
    pub metric: &'static str,
    /// Old (baseline) value.
    pub old: f64,
    /// New (candidate) value.
    pub new: f64,
    /// `100 × (new − old) / old`.
    pub delta_pct: f64,
    /// True when the delta exceeds the threshold.
    pub regressed: bool,
}

/// The result of comparing two reports.
#[derive(Debug)]
pub struct CompareOutcome {
    /// Every metric present in both reports, in old-report order.
    pub rows: Vec<CompareRow>,
    /// Entries in the old report with no counterpart in the new one.
    pub missing: Vec<String>,
    /// Entries only in the new report (informational).
    pub added: Vec<String>,
    /// The threshold the rows were judged against (percent).
    pub threshold_pct: f64,
}

impl CompareOutcome {
    /// True when nothing regressed and nothing went missing.
    pub fn passed(&self) -> bool {
        self.missing.is_empty() && !self.rows.iter().any(|r| r.regressed)
    }

    /// Render an aligned human-readable table plus the verdict line.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<45} {:>12} {:>14} {:>14} {:>9}  {}\n",
            "entry", "metric", "old", "new", "delta %", "flag"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:<45} {:>12} {:>14.1} {:>14.1} {:>+9.1}  {}\n",
                r.name,
                r.metric,
                r.old,
                r.new,
                r.delta_pct,
                if r.regressed { "REGRESSED" } else { "ok" }
            ));
        }
        for name in &self.missing {
            out.push_str(&format!("{name:<45} MISSING from new report\n"));
        }
        for name in &self.added {
            out.push_str(&format!("{name:<45} new entry (not in baseline)\n"));
        }
        let regressed = self.rows.iter().filter(|r| r.regressed).count();
        out.push_str(&format!(
            "verdict: {} ({} metric(s) compared, {} regressed > {:.0}%, {} missing)\n",
            if self.passed() { "PASS" } else { "FAIL" },
            self.rows.len(),
            regressed,
            self.threshold_pct,
            self.missing.len()
        ));
        out
    }
}

/// Extract the comparable metrics from a report, auto-detecting the schema.
pub fn extract_metrics(json: &str) -> Result<Vec<Metric>, String> {
    let doc = parse(json)?;
    let schema = doc
        .get("schema")
        .and_then(Json::as_str)
        .ok_or("report has no schema field")?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("report has no entries array")?;
    if entries.is_empty() {
        return Err("report has no entries".into());
    }
    let mut out = Vec::new();
    match schema {
        "st-bench/1" => {
            for e in entries {
                let name = e
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("st-bench/1 entry missing name")?;
                let ns = e
                    .get("ns_per_iter")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("entry `{name}` missing ns_per_iter"))?;
                out.push(Metric { name: name.into(), metric: "ns_per_iter", value: ns });
            }
        }
        "st-serve-bench/1" => {
            for e in entries {
                let name = e
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or("st-serve-bench/1 entry missing name")?;
                let timing = e
                    .get("timing")
                    .ok_or_else(|| format!("entry `{name}` missing timing object"))?;
                for metric in ["p50_ms", "p99_ms"] {
                    let v = timing
                        .get(metric)
                        .and_then(Json::as_f64)
                        .ok_or_else(|| format!("entry `{name}` missing timing.{metric}"))?;
                    out.push(Metric { name: name.into(), metric, value: v });
                }
            }
        }
        other => return Err(format!("unsupported report schema `{other}`")),
    }
    Ok(out)
}

/// Compare two rendered reports (same schema on both sides) with a noise
/// threshold in percent.
pub fn compare_reports(
    old_json: &str,
    new_json: &str,
    threshold_pct: f64,
) -> Result<CompareOutcome, String> {
    if !threshold_pct.is_finite() || threshold_pct < 0.0 {
        return Err(format!("threshold must be a non-negative percentage, got {threshold_pct}"));
    }
    let old = extract_metrics(old_json).map_err(|e| format!("old report: {e}"))?;
    let new = extract_metrics(new_json).map_err(|e| format!("new report: {e}"))?;

    let mut rows = Vec::new();
    let mut missing = Vec::new();
    for m in &old {
        match new.iter().find(|n| n.name == m.name && n.metric == m.metric) {
            Some(n) => {
                let old_v = m.value.max(f64::MIN_POSITIVE);
                let delta_pct = 100.0 * (n.value - m.value) / old_v;
                rows.push(CompareRow {
                    name: m.name.clone(),
                    metric: m.metric,
                    old: m.value,
                    new: n.value,
                    delta_pct,
                    regressed: n.value > m.value * (1.0 + threshold_pct / 100.0),
                });
            }
            None if missing.last() != Some(&m.name) => missing.push(m.name.clone()),
            None => {}
        }
    }
    let mut added: Vec<String> = Vec::new();
    for n in &new {
        let known = old.iter().any(|m| m.name == n.name);
        if !known && !added.contains(&n.name) {
            added.push(n.name.clone());
        }
    }
    Ok(CompareOutcome { rows, missing, added, threshold_pct })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn micro(entries: &[(&str, u64)]) -> String {
        let body: Vec<String> = entries
            .iter()
            .map(|(n, v)| format!("{{\"name\":\"{n}\",\"ns_per_iter\":{v},\"iters\":10}}"))
            .collect();
        format!("{{\"schema\":\"st-bench/1\",\"quick\":true,\"entries\":[{}]}}", body.join(","))
    }

    #[test]
    fn identical_reports_pass() {
        let doc = micro(&[("matmul", 1000), ("attention", 5000)]);
        let out = compare_reports(&doc, &doc, 20.0).unwrap();
        assert!(out.passed());
        assert_eq!(out.rows.len(), 2);
        assert!(out.rows.iter().all(|r| !r.regressed && r.delta_pct == 0.0));
    }

    #[test]
    fn injected_regression_fails() {
        let old = micro(&[("matmul", 1000), ("attention", 5000)]);
        let new = micro(&[("matmul", 1000), ("attention", 50_000)]); // 10x slower
        let out = compare_reports(&old, &new, 50.0).unwrap();
        assert!(!out.passed());
        let bad: Vec<&CompareRow> = out.rows.iter().filter(|r| r.regressed).collect();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].name, "attention");
        assert!(out.render_table().contains("REGRESSED"));
    }

    #[test]
    fn threshold_is_a_noise_floor() {
        let old = micro(&[("matmul", 1000)]);
        let new = micro(&[("matmul", 1100)]); // +10%
        assert!(compare_reports(&old, &new, 20.0).unwrap().passed());
        assert!(!compare_reports(&old, &new, 5.0).unwrap().passed());
        // Speedups never regress, no matter the threshold.
        let fast = micro(&[("matmul", 10)]);
        assert!(compare_reports(&old, &fast, 0.0).unwrap().passed());
    }

    #[test]
    fn missing_entry_fails_and_added_entry_does_not() {
        let old = micro(&[("matmul", 1000), ("attention", 5000)]);
        let new = micro(&[("matmul", 1000), ("brand_new", 7)]);
        let out = compare_reports(&old, &new, 20.0).unwrap();
        assert!(!out.passed());
        assert_eq!(out.missing, vec!["attention".to_string()]);
        assert_eq!(out.added, vec!["brand_new".to_string()]);

        let superset_only = compare_reports(&micro(&[("matmul", 1000)]), &new, 20.0).unwrap();
        assert!(superset_only.passed(), "new-only entries are informational");
    }

    #[test]
    fn serve_schema_compares_p50_and_p99() {
        let serve = |p50: f64, p99: f64| {
            format!(
                "{{\"schema\":\"st-serve-bench/1\",\"seed\":7,\"entries\":[\
                 {{\"name\":\"closed_loop_w1\",\"workers\":1,\
                 \"timing\":{{\"p50_ms\":{p50},\"p99_ms\":{p99},\"rps\":1.0}}}}]}}"
            )
        };
        let out = compare_reports(&serve(10.0, 30.0), &serve(11.0, 31.0), 25.0).unwrap();
        assert!(out.passed());
        assert_eq!(out.rows.len(), 2);
        let out = compare_reports(&serve(10.0, 30.0), &serve(40.0, 30.0), 25.0).unwrap();
        assert!(!out.passed(), "p50 4x worse must regress");
    }

    #[test]
    fn schema_mismatch_and_garbage_are_errors() {
        assert!(compare_reports("{\"schema\":\"st-bench/9\",\"entries\":[{}]}", "{}", 10.0).is_err());
        assert!(compare_reports("not json", "not json", 10.0).is_err());
        assert!(compare_reports(&micro(&[("m", 1)]), &micro(&[("m", 1)]), -3.0).is_err());
    }
}
