//! The `BENCH_serve.json` report model for the `pristi loadtest` harness.
//!
//! The loadtest binary drives the multi-worker [`st-serve`] `ImputeService`
//! with a seeded closed-loop schedule and writes its results as one
//! schema-versioned JSON document ([`SERVE_SCHEMA`], `st-serve-bench/1`).
//! The document is split into two kinds of fields:
//!
//! * **deterministic** fields — request/ok/shed/timeout counts and the
//!   order-independent response `checksum` — which must be byte-identical
//!   between two runs with the same seed (that is what
//!   `scripts/verify.sh` pins);
//! * **timing** fields — p50/p99/p999 latency, sustained RPS, wall time —
//!   which vary run-to-run and are therefore nested inside a single
//!   `"timing":{...}` object per entry, so [`strip_report_timing`] can
//!   blank them in one pass.
//!
//! [`st-serve`]: ../../st_serve/index.html

use crate::report::fmt_metric;
use st_obs::json::{escape, parse, Json};

/// Schema tag of the `BENCH_serve.json` document.
pub const SERVE_SCHEMA: &str = "st-serve-bench/1";

/// Scheduling-dependent statistics of one loadtest entry, rendered as the
/// nested `"timing":{...}` object that [`strip_report_timing`] blanks.
#[derive(Debug, Clone, Copy, Default)]
pub struct ServeTiming {
    /// Median request latency in milliseconds.
    pub p50_ms: f64,
    /// 99th-percentile request latency in milliseconds.
    pub p99_ms: f64,
    /// 99.9th-percentile request latency in milliseconds.
    pub p999_ms: f64,
    /// Sustained completed-requests-per-second over the phase.
    pub rps: f64,
    /// Wall-clock duration of the phase in milliseconds.
    pub wall_ms: f64,
}

/// One loadtest phase (e.g. `closed_loop_w4`, `shed_storm`).
#[derive(Debug, Clone)]
pub struct ServeEntry {
    /// Phase name; `scripts/verify.sh` greps for the canonical set.
    pub name: String,
    /// Worker count the service ran with.
    pub workers: usize,
    /// Concurrent closed-loop client count.
    pub clients: usize,
    /// Total requests issued.
    pub requests: u64,
    /// Requests answered with imputation samples.
    pub ok: u64,
    /// Requests rejected by admission control (`QueueFull { shed: true }`).
    pub shed: u64,
    /// Requests rejected for a missed deadline.
    pub timeout: u64,
    /// Order-independent checksum over all successful responses (wrapping
    /// sum of per-request FNV-1a hashes) — pins bitwise determinism without
    /// caring which client finished first.
    pub checksum: u64,
    /// Scheduling-dependent latency/throughput statistics.
    pub timing: ServeTiming,
}

/// The full `BENCH_serve.json` document.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Base seed of the request schedule (same seed → same trace).
    pub seed: u64,
    /// Whether this was a `--quick` run (shorter phases, CI smoke only).
    pub quick: bool,
    /// One entry per loadtest phase.
    pub entries: Vec<ServeEntry>,
}

impl ServeReport {
    /// Render as the `st-serve-bench/1` JSON document (single line + `\n`).
    pub fn to_json(&self) -> String {
        let entries: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                format!(
                    "{{\"name\":{},\"workers\":{},\"clients\":{},\"requests\":{},\
                     \"ok\":{},\"shed\":{},\"timeout\":{},\"checksum\":{},\
                     \"timing\":{{\"p50_ms\":{},\"p99_ms\":{},\"p999_ms\":{},\
                     \"rps\":{},\"wall_ms\":{}}}}}",
                    escape(&e.name),
                    e.workers,
                    e.clients,
                    e.requests,
                    e.ok,
                    e.shed,
                    e.timeout,
                    e.checksum,
                    e.timing.p50_ms,
                    e.timing.p99_ms,
                    e.timing.p999_ms,
                    e.timing.rps,
                    e.timing.wall_ms,
                )
            })
            .collect();
        format!(
            "{{\"schema\":\"{}\",\"seed\":{},\"quick\":{},\"entries\":[{}]}}\n",
            SERVE_SCHEMA,
            self.seed,
            self.quick,
            entries.join(",")
        )
    }

    /// Render an aligned human-readable summary (one row per entry).
    pub fn render_table(&self) -> String {
        let mut t = crate::report::Table::new(
            &format!("pristi loadtest (seed {})", self.seed),
            &["phase", "workers", "clients", "req", "ok", "shed", "timeout", "p50 ms", "p99 ms", "p999 ms", "rps"],
        );
        for e in &self.entries {
            t.row(vec![
                e.name.clone(),
                e.workers.to_string(),
                e.clients.to_string(),
                e.requests.to_string(),
                e.ok.to_string(),
                e.shed.to_string(),
                e.timeout.to_string(),
                fmt_metric(e.timing.p50_ms),
                fmt_metric(e.timing.p99_ms),
                fmt_metric(e.timing.p999_ms),
                fmt_metric(e.timing.rps),
            ]);
        }
        t.render()
    }
}

/// Exact nearest-rank percentile over an **already sorted** slice of
/// latencies; `q` in `[0, 1]`. Empty input yields 0.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Blank every `"timing":{...}` object in a rendered report, leaving all
/// deterministic fields in place: two same-seed loadtest runs must be
/// byte-identical after this transformation (the contract
/// `scripts/verify.sh` pins by diffing two stripped runs).
///
/// Works on the raw text so the stripped form is stable regardless of JSON
/// parser float formatting; the input must come from [`ServeReport::to_json`]
/// (timing objects contain no nested braces).
pub fn strip_report_timing(json: &str) -> String {
    let mut out = String::with_capacity(json.len());
    let mut rest = json;
    const KEY: &str = "\"timing\":{";
    while let Some(at) = rest.find(KEY) {
        let after_open = at + KEY.len();
        out.push_str(&rest[..after_open]);
        match rest[after_open..].find('}') {
            Some(close) => rest = &rest[after_open + close..],
            None => {
                rest = "";
            }
        }
    }
    out.push_str(rest);
    out
}

/// Parse and validate a `BENCH_serve.json` document: schema tag, non-empty
/// entry list, and every deterministic + timing field present on each entry.
/// Returns the entry names in document order.
pub fn validate_serve_report(json: &str) -> Result<Vec<String>, String> {
    let doc = parse(json)?;
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == SERVE_SCHEMA => {}
        Some(s) => return Err(format!("schema {s:?}, expected {SERVE_SCHEMA:?}")),
        None => return Err("missing schema field".into()),
    }
    doc.get("seed").and_then(Json::as_u64).ok_or("missing seed field")?;
    let entries = doc
        .get("entries")
        .and_then(Json::as_arr)
        .ok_or("missing entries array")?;
    if entries.is_empty() {
        return Err("entries array is empty".into());
    }
    let mut names = Vec::with_capacity(entries.len());
    for e in entries {
        let name = e
            .get("name")
            .and_then(Json::as_str)
            .ok_or("entry missing name")?
            .to_string();
        for key in ["workers", "clients", "requests", "ok", "shed", "timeout", "checksum"] {
            e.get(key)
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("entry {name:?} missing {key}"))?;
        }
        let timing = e.get("timing").ok_or_else(|| format!("entry {name:?} missing timing"))?;
        for key in ["p50_ms", "p99_ms", "p999_ms", "rps", "wall_ms"] {
            timing
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("entry {name:?} missing timing.{key}"))?;
        }
        names.push(name);
    }
    Ok(names)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report(latency_scale: f64) -> ServeReport {
        ServeReport {
            seed: 7,
            quick: true,
            entries: vec![
                ServeEntry {
                    name: "closed_loop_w1".into(),
                    workers: 1,
                    clients: 4,
                    requests: 32,
                    ok: 32,
                    shed: 0,
                    timeout: 0,
                    checksum: 0xDEAD_BEEF,
                    timing: ServeTiming {
                        p50_ms: 3.0 * latency_scale,
                        p99_ms: 9.0 * latency_scale,
                        p999_ms: 9.5 * latency_scale,
                        rps: 120.0 / latency_scale,
                        wall_ms: 266.0 * latency_scale,
                    },
                },
                ServeEntry {
                    name: "shed_storm".into(),
                    workers: 1,
                    clients: 4,
                    requests: 16,
                    ok: 0,
                    shed: 16,
                    timeout: 0,
                    checksum: 0,
                    timing: ServeTiming::default(),
                },
            ],
        }
    }

    #[test]
    fn report_round_trips_and_validates() {
        let json = sample_report(1.0).to_json();
        let names = validate_serve_report(&json).unwrap();
        assert_eq!(names, vec!["closed_loop_w1", "shed_storm"]);
    }

    #[test]
    fn stripping_timing_makes_same_seed_runs_identical() {
        // Two runs whose latencies differ by 3x but whose deterministic
        // fields agree must be byte-identical after stripping.
        let a = strip_report_timing(&sample_report(1.0).to_json());
        let b = strip_report_timing(&sample_report(3.0).to_json());
        assert_eq!(a, b);
        assert!(a.contains("\"timing\":{}"), "timing objects blanked: {a}");
        assert!(a.contains("\"checksum\":3735928559"), "checksum kept: {a}");
        // A checksum difference survives stripping.
        let mut diverged = sample_report(1.0);
        diverged.entries[0].checksum ^= 1;
        assert_ne!(a, strip_report_timing(&diverged.to_json()));
    }

    #[test]
    fn validation_rejects_malformed_reports() {
        assert!(validate_serve_report("not json").is_err());
        assert!(validate_serve_report("{\"schema\":\"st-bench/1\",\"entries\":[]}").is_err());
        let err = validate_serve_report(
            "{\"schema\":\"st-serve-bench/1\",\"seed\":1,\"quick\":false,\"entries\":[]}",
        )
        .unwrap_err();
        assert!(err.contains("empty"), "{err}");
        // An entry missing a timing percentile is rejected.
        let mut report = sample_report(1.0);
        report.entries.truncate(1);
        let json = report.to_json().replace("\"p999_ms\"", "\"p998_ms\"");
        let err = validate_serve_report(&json).unwrap_err();
        assert!(err.contains("p999_ms"), "{err}");
    }

    #[test]
    fn percentiles_are_exact_nearest_rank() {
        let sorted: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert_eq!(percentile(&sorted, 0.50), 50.0);
        assert_eq!(percentile(&sorted, 0.99), 99.0);
        assert_eq!(percentile(&sorted, 0.999), 100.0);
        assert_eq!(percentile(&sorted, 0.0), 1.0);
        assert_eq!(percentile(&sorted, 1.0), 100.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
        assert_eq!(percentile(&[42.0], 0.999), 42.0);
    }
}
