//! Method runners: a uniform interface over the 13 classical/deep baselines
//! (`st-baselines`) and the diffusion models (PriSTI, CSDI and the Table VI
//! ablations from `pristi-core`).

use crate::datasets::Setting;
use crate::scale::Scale;
use pristi_core::{impute, ImputeOptions, ModelVariant, PristiConfig, Sampler, TrainConfig, TrainedModel};
use pristi_core::train::{train, MaskStrategyKind, Reporter};
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_baselines::batf::BatfImputer;
use st_baselines::brits::{BritsConfig, BritsImputer};
use st_baselines::grin::{GrinConfig, GrinImputer};
use st_baselines::kalman::KalmanImputer;
use st_baselines::mice::MiceImputer;
use st_baselines::rgain::{RgainConfig, RgainImputer};
use st_baselines::simple::{DailyAverageImputer, KnnImputer, LinearImputer, MeanImputer};
use st_baselines::trmf::TrmfImputer;
use st_baselines::var::VarImputer;
use st_baselines::{visible, Imputer};
use st_data::dataset::Split;
use st_data::SpatioTemporalDataset;
use st_tensor::NdArray;
use std::time::Instant;

/// Build every deterministic baseline with scale-appropriate budgets.
pub fn deterministic_imputers(scale: Scale, setting: Setting) -> Vec<Box<dyn Imputer>> {
    let window_len = if setting.is_aqi() { 36 } else { 24 };
    let rnn_epochs = scale.rnn_epochs();
    vec![
        Box::new(MeanImputer),
        Box::new(DailyAverageImputer),
        Box::new(KnnImputer::default()),
        Box::new(LinearImputer),
        Box::new(KalmanImputer::default()),
        Box::new(MiceImputer::default()),
        Box::new(VarImputer::default()),
        Box::new(TrmfImputer::default()),
        Box::new(BatfImputer::default()),
        Box::new(RgainImputer::new(RgainConfig {
            epochs: rnn_epochs,
            window_len,
            window_stride: window_len / 2,
            ..Default::default()
        })),
        Box::new(BritsImputer::new(BritsConfig {
            epochs: rnn_epochs,
            window_len,
            window_stride: window_len / 2,
            ..Default::default()
        })),
        Box::new(GrinImputer::new(GrinConfig {
            epochs: rnn_epochs,
            window_len,
            window_stride: window_len / 2,
            ..Default::default()
        })),
    ]
}

/// Run a deterministic baseline; returns the imputed panel and wall-clock.
pub fn run_deterministic(
    imp: &mut dyn Imputer,
    data: &SpatioTemporalDataset,
) -> (NdArray, f64) {
    let start = Instant::now();
    let panel = imp.fit_impute(data);
    (panel, start.elapsed().as_secs_f64())
}

/// Model configuration for a setting at a scale (with variant switches).
pub fn diffusion_model_cfg(scale: Scale, _setting: Setting, variant: ModelVariant) -> PristiConfig {
    let (d, layers, heads) = match scale {
        Scale::Smoke => (8, 1, 2),
        Scale::Fast => (16, 2, 4),
        Scale::Full => (32, 3, 8),
    };
    let mut cfg = PristiConfig {
        d_model: d,
        heads,
        layers,
        t_steps: scale.t_steps(),
        virtual_nodes: 16,
        time_emb_dim: 32,
        node_emb_dim: 8,
        step_emb_dim: 32,
        adaptive_dim: 4,
        ..PristiConfig::default()
    };
    cfg = cfg.with_variant(variant);
    cfg.validate().expect("bench model configs are valid");
    cfg
}

/// Training configuration for a setting at a scale, matching the paper's
/// strategy table (hybrid+historical on AQI, hybrid+block on block-missing,
/// point on point-missing).
pub fn diffusion_train_cfg(scale: Scale, setting: Setting) -> TrainConfig {
    let window_len = if setting.is_aqi() { 36 } else { 24 };
    let strategy = if setting.is_aqi() {
        MaskStrategyKind::HybridHistorical
    } else if setting.is_block() {
        MaskStrategyKind::HybridBlock
    } else {
        MaskStrategyKind::Point
    };
    TrainConfig {
        epochs: scale.diffusion_epochs(),
        batch_size: 8,
        lr: 1e-3,
        window_len,
        // denser windows on the short AQI panel so each epoch sees enough
        // gradient steps
        window_stride: if setting.is_aqi() { window_len / 3 } else { window_len / 2 },
        strategy,
        clip_norm: 5.0,
        seed: 1234,
        reporter: Reporter::Silent,
        threads: 0,
    }
}

/// Result of training and running a diffusion model.
pub struct DiffusionOutcome {
    /// Median-imputed `[T, N]` panel (visible values pass through).
    pub panel_median: NdArray,
    /// Per-sample imputed panels (for CRPS / quantiles).
    pub sample_panels: Vec<NdArray>,
    /// Training wall-clock seconds.
    pub train_secs: f64,
    /// Inference (ensemble sampling) wall-clock seconds.
    pub infer_secs: f64,
    /// The trained model bundle.
    pub trained: TrainedModel,
}

/// Train a diffusion variant and impute the panel.
///
/// When `full_panel` is false only the test split's windows are imputed
/// (sufficient for Tables III/IV/VI); when true the entire panel is covered
/// (needed for the Table V downstream task).
pub fn run_diffusion(
    variant: ModelVariant,
    data: &SpatioTemporalDataset,
    setting: Setting,
    scale: Scale,
    n_samples: usize,
    full_panel: bool,
) -> DiffusionOutcome {
    let model_cfg = diffusion_model_cfg(scale, setting, variant);
    let train_cfg = diffusion_train_cfg(scale, setting);
    run_diffusion_with(variant, data, model_cfg, train_cfg, n_samples, full_panel)
}

/// Like [`run_diffusion`] but with explicit configurations (used by the
/// hyperparameter-sensitivity experiment, Fig. 8).
pub fn run_diffusion_with(
    _variant: ModelVariant,
    data: &SpatioTemporalDataset,
    model_cfg: PristiConfig,
    train_cfg: TrainConfig,
    n_samples: usize,
    full_panel: bool,
) -> DiffusionOutcome {
    let t0 = Instant::now();
    let trained = train(data, model_cfg, &train_cfg).expect("bench training config is valid");
    let train_secs = t0.elapsed().as_secs_f64();
    let t1 = Instant::now();
    let (panel_median, sample_panels) =
        impute_panel_with_trained(&trained, data, n_samples, full_panel);
    let infer_secs = t1.elapsed().as_secs_f64();
    DiffusionOutcome { panel_median, sample_panels, train_secs, infer_secs, trained }
}

/// Impute a panel with an already-trained diffusion model; returns the
/// median panel and per-sample panels. Used directly by the sensitivity
/// experiments (Fig. 5) where one trained model is evaluated under many
/// different evaluation masks.
pub fn impute_panel_with_trained(
    trained: &TrainedModel,
    data: &SpatioTemporalDataset,
    n_samples: usize,
    full_panel: bool,
) -> (NdArray, Vec<NdArray>) {
    let len = trained.model.window_len();
    let (vals, mask) = visible(data);
    let mut panel_median = vals.clone();
    let mut sample_panels = vec![vals.clone(); n_samples];

    let t_len = data.n_steps();
    let n = data.n_nodes();
    let (range_start, range_end) =
        if full_panel { (0usize, t_len) } else { data.split_range(Split::Test) };
    let mut starts: Vec<usize> = (range_start..=(range_end - len)).step_by(len).collect();
    if starts.last() != Some(&(range_end - len)) {
        starts.push(range_end - len);
    }

    let mut rng = StdRng::seed_from_u64(4321);
    for t0w in starts {
        let w = data.window_at(t0w, len);
        let res = impute(
            trained,
            &w,
            &ImputeOptions { n_samples, sampler: Sampler::Ddpm },
            &mut rng,
        )
        .expect("bench window shape matches the trained model");
        let med = res.median();
        for l in 0..len {
            for i in 0..n {
                let idx = (t0w + l) * n + i;
                if mask.data()[idx] == 0.0 {
                    panel_median.data_mut()[idx] = med.data()[i * len + l];
                    for (s, sp) in sample_panels.iter_mut().enumerate() {
                        sp.data_mut()[idx] = res.samples[s].data()[i * len + l];
                    }
                }
            }
        }
    }
    (panel_median, sample_panels)
}

/// Normalised CRPS over a split's eval positions from sample panels.
///
/// Follows the CSDI/PriSTI convention of dividing the mean CRPS by the mean
/// absolute target value, which is what makes the paper's Table IV numbers
/// dimensionless (~0.01–0.3).
pub fn crps_of_panels(
    data: &SpatioTemporalDataset,
    samples: &[NdArray],
    split: Split,
) -> f64 {
    let (start, end) = data.split_range(split);
    let n = data.n_nodes();
    let p = (end - start) * n;
    let mut flat = Vec::with_capacity(samples.len() * p);
    for s in samples {
        flat.extend_from_slice(&s.data()[start * n..end * n]);
    }
    let target = &data.values.data()[start * n..end * n];
    let mask = &data.eval_mask.data()[start * n..end * n];
    let raw = st_metrics::crps_ensemble(&flat, samples.len(), target, mask);
    let mut abs_sum = 0.0f64;
    let mut count = 0.0f64;
    for (&t, &m) in target.iter().zip(mask) {
        if m > 0.0 {
            abs_sum += t.abs() as f64;
            count += 1.0;
        }
    }
    if count == 0.0 || abs_sum == 0.0 {
        raw
    } else {
        raw / (abs_sum / count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::build_dataset;
    use st_baselines::evaluate_panel;

    #[test]
    fn smoke_diffusion_pipeline_runs() {
        let data = build_dataset(Setting::MetrLaPoint, Scale::Smoke);
        let out = run_diffusion(ModelVariant::Pristi, &data, Setting::MetrLaPoint, Scale::Smoke, 3, false);
        assert_eq!(out.sample_panels.len(), 3);
        let err = evaluate_panel(&data, &out.panel_median, Split::Test);
        assert!(err.count() > 0.0, "no eval positions scored");
        assert!(err.mae().is_finite());
        let crps = crps_of_panels(&data, &out.sample_panels, Split::Test);
        assert!(crps.is_finite() && crps >= 0.0);
    }

    #[test]
    fn deterministic_list_has_twelve_methods() {
        let imps = deterministic_imputers(Scale::Smoke, Setting::MetrLaPoint);
        assert_eq!(imps.len(), 12);
        let names: Vec<_> = imps.iter().map(|i| i.name()).collect();
        assert!(names.contains(&"MEAN"));
        assert!(names.contains(&"GRIN"));
        assert!(names.contains(&"rGAIN"));
    }

    #[test]
    fn strategies_follow_paper_table() {
        assert!(matches!(
            diffusion_train_cfg(Scale::Fast, Setting::AqiSimulatedFailure).strategy,
            MaskStrategyKind::HybridHistorical
        ));
        assert!(matches!(
            diffusion_train_cfg(Scale::Fast, Setting::MetrLaBlock).strategy,
            MaskStrategyKind::HybridBlock
        ));
        assert!(matches!(
            diffusion_train_cfg(Scale::Fast, Setting::PemsBayPoint).strategy,
            MaskStrategyKind::Point
        ));
    }
}
