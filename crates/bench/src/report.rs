//! Text-table rendering and CSV output for the experiment binaries.

use std::fs;
use std::path::Path;

/// A simple column-aligned results table.
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Start a table with a title and column headers.
    pub fn new(title: &str, header: &[&str]) -> Self {
        Self {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Append a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, c) in cells.iter().enumerate() {
                if i == 0 {
                    line.push_str(&format!("{:<width$}", c, width = widths[i]));
                } else {
                    line.push_str(&format!("  {:>width$}", c, width = widths[i]));
                }
            }
            line.push('\n');
            line
        };
        out.push_str(&fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV to `results/<name>.csv` (creating the directory).
    pub fn save_csv(&self, name: &str) -> std::io::Result<()> {
        let mut csv = String::new();
        csv.push_str(&self.header.join(","));
        csv.push('\n');
        for row in &self.rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        write_csv(name, &csv)
    }
}

/// Write raw CSV content into `results/<name>.csv`.
pub fn write_csv(name: &str, content: &str) -> std::io::Result<()> {
    let dir = Path::new("results");
    fs::create_dir_all(dir)?;
    fs::write(dir.join(format!("{name}.csv")), content)
}

/// Format a float with 2–4 significant decimals depending on magnitude.
pub fn fmt_metric(v: f64) -> String {
    if !v.is_finite() {
        "n/a".to_string()
    } else if v.abs() >= 100.0 {
        format!("{v:.1}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("Demo", &["Method", "MAE"]);
        t.row(vec!["MEAN".into(), "53.48".into()]);
        t.row(vec!["PriSTI".into(), "9.03".into()]);
        let s = t.render();
        assert!(s.contains("== Demo =="));
        assert!(s.contains("MEAN"));
        assert!(s.contains("9.03"));
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 5);
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn rejects_bad_arity() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn metric_formatting() {
        assert_eq!(fmt_metric(123.456), "123.5");
        assert_eq!(fmt_metric(9.031), "9.03");
        assert_eq!(fmt_metric(0.0123), "0.0123");
        assert_eq!(fmt_metric(f64::NAN), "n/a");
    }
}
