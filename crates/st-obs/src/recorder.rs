//! The global recorder: near-zero cost when disabled, scoped installation,
//! thread-safe nested spans, and aggregated per-op timing.
//!
//! Design notes:
//!
//! * A single relaxed [`AtomicBool`] gates every instrumentation site. With
//!   no recorder installed, `span` / `op_start` / `record_op` are one atomic
//!   load and a branch — cheap enough to leave compiled into the tensor
//!   engine's innermost op dispatch.
//! * [`install`] returns a guard; dropping it flushes every sink and
//!   disables recording, so tests can scope telemetry to one run.
//! * Span nesting uses a thread-local path stack (`"train/epoch/train_step"`),
//!   so concurrent threads each get a coherent tree. Since `st-obs/2` every
//!   span additionally carries a stream-unique id, its parent's id, and its
//!   *self time* (duration minus direct children), so a trace can be folded
//!   into a flamegraph without heuristics.
//! * Per-op timing is *aggregated* (`(phase, kind) -> calls/total_ns/elements`)
//!   rather than emitted per call: a training step records thousands of ops,
//!   and one `op` event per kind at flush keeps streams small and
//!   deterministic (events are emitted in sorted order). Pool counters
//!   ([`counter_agg`]) and per-dispatch parallel telemetry
//!   ([`record_par_gate`] / [`record_par_dispatch`]) aggregate the same way,
//!   which is what keeps event count and order invariant across
//!   `ST_PAR_THREADS` values.
//! * Request-scoped trace ids ([`trace_scope`]) are a thread-local ambient
//!   value stamped onto every span opened while the scope is active — the
//!   serve path sets one per coalesced batch so per-denoise-step spans can
//!   be attributed to the requests they served.

use crate::event::{Event, Value, SCHEMA};
use crate::sink::Sink;
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which side of the pipeline an op timing belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Forward tape ops (`Graph` methods).
    Fwd,
    /// Backward gradient rules (`backprop`).
    Bwd,
    /// Optimizer / gradient post-processing.
    Opt,
}

impl Phase {
    /// Short lowercase tag used in events and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Fwd => "fwd",
            Phase::Bwd => "bwd",
            Phase::Opt => "opt",
        }
    }
}

#[derive(Default, Clone, Copy)]
struct OpStat {
    calls: u64,
    total_ns: u128,
    elements: u64,
}

/// Log-spaced bucket count for histogram percentile estimation: bucket `i`
/// covers values whose `floor(log2(v))` is `i - 32`, spanning ~2⁻³² to ~2³²
/// (latencies in ms, queue depths, batch sizes all land comfortably inside).
const HIST_BUCKETS: usize = 64;

#[derive(Clone, Copy)]
struct HistStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]); non-positive
    /// and non-finite values land in bucket 0.
    buckets: [u64; HIST_BUCKETS],
}

/// The log-spaced bucket a value falls into.
fn hist_bucket(value: f64) -> usize {
    if value <= 0.0 || !value.is_finite() {
        return 0;
    }
    (value.log2().floor() as i64 + 32).clamp(0, HIST_BUCKETS as i64 - 1) as usize
}

impl HistStat {
    /// Percentile estimate from the bucket counts, plus an *exactness* flag.
    ///
    /// With too few samples for the requested quantile — `count < 1/(1-q)`,
    /// e.g. a p999 over fewer than 1000 observations — a bucket estimate is
    /// a misleading extrapolation, so the exact observed maximum is returned
    /// with `exact = true` (surfaced as `"exact_tail": true` on the event).
    /// Otherwise: the upper bound of the first bucket whose cumulative count
    /// reaches `q·count`, clamped to the exact observed `[min, max]` —
    /// within a factor of 2 of the true value, plenty for p50/p99/p999 trend
    /// lines in a summary.
    fn percentile(&self, q: f64) -> (f64, bool) {
        if self.count == 0 {
            return (0.0, true);
        }
        if (self.count as f64) < 1.0 / (1.0 - q) {
            return (self.max, true);
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = 2f64.powi(i as i32 - 31);
                return (upper.clamp(self.min, self.max), false);
            }
        }
        (self.max, false)
    }
}

/// Aggregated per-label parallel-dispatch telemetry (see
/// [`record_par_gate`] / [`record_par_dispatch`]).
#[derive(Default, Clone, Copy)]
struct ParStat {
    /// Pooled dispatches recorded under this label.
    dispatches: u64,
    /// Total chunks across those dispatches.
    chunks: u64,
    /// `worthwhile` gate outcomes for this label.
    accept: u64,
    reject: u64,
    /// Summed participating-thread counts (threads that ran ≥ 1 chunk).
    threads: u64,
    /// Summed busy time across all participating threads.
    busy_ns: u128,
    /// Summed wall time of the dispatching call.
    span_ns: u128,
    /// Summed `participants × span` — the efficiency denominator.
    weighted_ns: u128,
}

struct Inner {
    epoch: Instant,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    ops: Mutex<HashMap<(Phase, &'static str), OpStat>>,
    hists: Mutex<HashMap<&'static str, HistStat>>,
    counters: Mutex<HashMap<&'static str, f64>>,
    pars: Mutex<HashMap<&'static str, ParStat>>,
}

impl Inner {
    fn now_ns(&self) -> u128 {
        self.epoch.elapsed().as_nanos()
    }

    fn emit(&self, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        let e = Event::new(kind, self.now_ns(), fields);
        let mut sinks = self.sinks.lock().expect("st-obs sink lock");
        for s in sinks.iter_mut() {
            s.event(&e);
        }
    }

    /// Emit aggregated op/hist events (in sorted order, for determinism) and
    /// flush every sink. Aggregates are drained, so repeated flushes emit
    /// deltas.
    fn flush(&self) {
        let mut ops: Vec<((Phase, &'static str), OpStat)> =
            self.ops.lock().expect("st-obs ops lock").drain().collect();
        ops.sort_by_key(|&((phase, kind), _)| (phase, kind));
        for ((phase, kind), st) in ops {
            self.emit(
                "op",
                vec![
                    ("phase", Value::S(phase.as_str().into())),
                    ("kind", Value::S(kind.into())),
                    ("calls", Value::U(st.calls)),
                    ("total_ns", Value::U(st.total_ns.min(u128::from(u64::MAX)) as u64)),
                    ("elements", Value::U(st.elements)),
                ],
            );
        }
        let mut pars: Vec<(&'static str, ParStat)> =
            self.pars.lock().expect("st-obs par lock").drain().collect();
        pars.sort_by_key(|&(label, _)| label);
        for (label, p) in pars {
            let eff_pct = if p.weighted_ns > 0 {
                100.0 * p.busy_ns as f64 / p.weighted_ns as f64
            } else {
                100.0
            };
            self.emit(
                "par",
                vec![
                    ("label", Value::S(label.into())),
                    ("dispatches", Value::U(p.dispatches)),
                    ("chunks", Value::U(p.chunks)),
                    ("accept", Value::U(p.accept)),
                    ("reject", Value::U(p.reject)),
                    ("threads", Value::U(p.threads)),
                    ("busy_ns", Value::U(p.busy_ns.min(u128::from(u64::MAX)) as u64)),
                    ("span_ns", Value::U(p.span_ns.min(u128::from(u64::MAX)) as u64)),
                    ("eff_pct", Value::F(eff_pct)),
                ],
            );
        }
        let mut counters: Vec<(&'static str, f64)> =
            self.counters.lock().expect("st-obs counter lock").drain().collect();
        counters.sort_by_key(|&(name, _)| name);
        for (name, value) in counters {
            self.emit("counter", vec![("name", Value::S(name.into())), ("value", Value::F(value))]);
        }
        let mut hists: Vec<(&'static str, HistStat)> =
            self.hists.lock().expect("st-obs hist lock").drain().collect();
        hists.sort_by_key(|&(name, _)| name);
        for (name, h) in hists {
            let (p50, e50) = h.percentile(0.50);
            let (p99, e99) = h.percentile(0.99);
            let (p999, e999) = h.percentile(0.999);
            self.emit(
                "hist",
                vec![
                    ("name", Value::S(name.into())),
                    ("count", Value::U(h.count)),
                    ("min", Value::F(h.min)),
                    ("max", Value::F(h.max)),
                    ("mean", Value::F(if h.count > 0 { h.sum / h.count as f64 } else { 0.0 })),
                    ("p50", Value::F(p50)),
                    ("p99", Value::F(p99)),
                    ("p999", Value::F(p999)),
                    ("exact_tail", Value::B(e50 || e99 || e999)),
                ],
            );
        }
        let mut sinks = self.sinks.lock().expect("st-obs sink lock");
        for s in sinks.iter_mut() {
            s.flush();
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT: Mutex<Option<Arc<Inner>>> = Mutex::new(None);

/// Stream-unique span id allocator (process-global so spans opened on worker
/// threads never collide with the dispatching thread's).
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
/// Trace id allocator for request-scoped tracing (see [`next_trace_id`]).
static NEXT_TRACE_ID: AtomicU64 = AtomicU64::new(1);

/// One open span on this thread: its id plus the summed durations of its
/// already-closed direct children (for self-time computation).
struct SpanFrame {
    sid: u64,
    child_ns: u128,
}

thread_local! {
    /// Slash-joined path of the spans currently open on this thread.
    static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
    /// Parallel stack of open-span frames (ids + accumulated child time).
    static SPAN_STACK: RefCell<Vec<SpanFrame>> = const { RefCell::new(Vec::new()) };
    /// Ambient trace id stamped onto spans opened on this thread.
    static TRACE: Cell<Option<u64>> = const { Cell::new(None) };
}

fn current() -> Option<Arc<Inner>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    CURRENT.lock().expect("st-obs recorder lock").clone()
}

/// Install a recorder feeding the given sinks; recording stays active until
/// the returned guard is dropped. Panics if a recorder is already installed
/// (telemetry streams must not interleave).
pub fn install(sinks: Vec<Box<dyn Sink>>) -> RecorderGuard {
    let inner = Arc::new(Inner {
        epoch: Instant::now(),
        sinks: Mutex::new(sinks),
        ops: Mutex::new(HashMap::new()),
        hists: Mutex::new(HashMap::new()),
        counters: Mutex::new(HashMap::new()),
        pars: Mutex::new(HashMap::new()),
    });
    inner.emit("header", vec![("schema", Value::S(SCHEMA.into()))]);
    {
        let mut cur = CURRENT.lock().expect("st-obs recorder lock");
        assert!(cur.is_none(), "st-obs recorder already installed");
        *cur = Some(Arc::clone(&inner));
    }
    ENABLED.store(true, Ordering::SeqCst);
    RecorderGuard { inner }
}

/// True while a recorder is installed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Emit aggregated op/histogram events and flush all sinks now.
pub fn flush() {
    if let Some(inner) = current() {
        inner.flush();
    }
}

/// Scope handle returned by [`install`]; dropping it flushes and disables.
pub struct RecorderGuard {
    inner: Arc<Inner>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *CURRENT.lock().expect("st-obs recorder lock") = None;
        self.inner.flush();
    }
}

/// Emit a custom event (no-op when disabled).
pub fn emit(kind: &'static str, fields: Vec<(&'static str, Value)>) {
    if let Some(inner) = current() {
        inner.emit(kind, fields);
    }
}

/// Emit a `counter` event (monotonic quantity, e.g. windows processed).
pub fn counter_add(name: &'static str, delta: f64) {
    if let Some(inner) = current() {
        inner.emit("counter", vec![("name", Value::S(name.into())), ("value", Value::F(delta))]);
    }
}

/// Fold a delta into a named *aggregated* counter, emitted as one `counter`
/// event per name at flush (sorted by name).
///
/// Prefer this over [`counter_add`] for high-frequency sites and for any
/// counter whose per-event order would depend on scheduling: aggregation
/// makes event count and order independent of how often (and from which
/// thread) the counter is touched. Recording a zero delta still creates the
/// entry, so call sites can keep the flushed name set invariant across
/// configurations (st-par records all `pool.*` names on every dispatch for
/// exactly this reason).
pub fn counter_agg(name: &'static str, delta: f64) {
    if let Some(inner) = current() {
        *inner.counters.lock().expect("st-obs counter lock").entry(name).or_insert(0.0) += delta;
    }
}

/// Record one `worthwhile` gate decision for a labelled parallel region.
///
/// Aggregated per label and emitted as a `par` event at flush. Every gate
/// call site must pass its label unconditionally (whatever the decision),
/// so the label set — the only part of the event that survives
/// [`crate::strip_timing`] — is identical across `ST_PAR_THREADS` values.
pub fn record_par_gate(label: &'static str, accepted: bool) {
    if let Some(inner) = current() {
        let mut pars = inner.pars.lock().expect("st-obs par lock");
        let p = pars.entry(label).or_default();
        if accepted {
            p.accept += 1;
        } else {
            p.reject += 1;
        }
    }
}

/// Record one completed pooled dispatch for a labelled parallel region.
///
/// * `chunks` — chunks the dispatch was split into,
/// * `threads` — threads that executed at least one chunk,
/// * `busy_ns` — summed per-thread time spent executing chunks,
/// * `span_ns` — wall time of the dispatching call.
///
/// At flush the per-label aggregate reports
/// `eff_pct = Σbusy / Σ(threads × span)` — 100% means every participating
/// thread was busy for the whole dispatch; low values mean chunks were too
/// few/uneven or the dispatch overhead dominated.
pub fn record_par_dispatch(
    label: &'static str,
    chunks: u64,
    threads: u64,
    busy_ns: u128,
    span_ns: u128,
) {
    if let Some(inner) = current() {
        let mut pars = inner.pars.lock().expect("st-obs par lock");
        let p = pars.entry(label).or_default();
        p.dispatches += 1;
        p.chunks += chunks;
        p.threads += threads;
        p.busy_ns += busy_ns;
        p.span_ns += span_ns;
        p.weighted_ns += u128::from(threads) * span_ns;
    }
}

/// Emit a `gauge` event (point-in-time level, e.g. loss, lr, grad norm).
pub fn gauge_set(name: &'static str, value: f64) {
    if let Some(inner) = current() {
        inner.emit("gauge", vec![("name", Value::S(name.into())), ("value", Value::F(value))]);
    }
}

/// Record one observation into a named histogram (emitted aggregated at
/// flush: count/min/max/mean plus log-bucketed p50/p99/p999 estimates).
pub fn hist_record(name: &'static str, value: f64) {
    if let Some(inner) = current() {
        let mut hists = inner.hists.lock().expect("st-obs hist lock");
        let h = hists.entry(name).or_insert(HistStat {
            count: 0,
            sum: 0.0,
            min: value,
            max: value,
            buckets: [0; HIST_BUCKETS],
        });
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
        h.buckets[hist_bucket(value)] += 1;
    }
}

// ---------------------------------------------------------------------------
// Op timing
// ---------------------------------------------------------------------------

/// Opaque start-of-op token; `None` inside means recording was off when the
/// op began, making the whole round-trip two relaxed atomic loads.
#[derive(Debug, Clone, Copy)]
pub struct OpStart(Option<Instant>);

/// Capture an op start time iff recording is enabled.
#[inline]
pub fn op_start() -> OpStart {
    if ENABLED.load(Ordering::Relaxed) {
        OpStart(Some(Instant::now()))
    } else {
        OpStart(None)
    }
}

/// Fold one completed op into the `(phase, kind)` aggregate.
#[inline]
pub fn record_op(phase: Phase, kind: &'static str, start: OpStart, elements: u64) {
    let Some(t0) = start.0 else { return };
    let dur = t0.elapsed().as_nanos();
    if let Some(inner) = current() {
        let mut ops = inner.ops.lock().expect("st-obs ops lock");
        let st = ops.entry((phase, kind)).or_default();
        st.calls += 1;
        st.total_ns += dur;
        st.elements = st.elements.saturating_add(elements);
    }
}

// ---------------------------------------------------------------------------
// Traces
// ---------------------------------------------------------------------------

/// Allocate a fresh process-unique trace id. Works with or without a
/// recorder installed, so request paths can allocate unconditionally.
pub fn next_trace_id() -> u64 {
    NEXT_TRACE_ID.fetch_add(1, Ordering::Relaxed)
}

/// The trace id currently in scope on this thread, if any.
pub fn current_trace() -> Option<u64> {
    TRACE.with(|t| t.get())
}

/// RAII guard restoring the previous ambient trace id on drop.
pub struct TraceGuard {
    prev: Option<u64>,
}

/// Set the ambient trace id for this thread until the guard drops. Every
/// span opened while the scope is active carries `trace` on its end event,
/// so a whole subtree (e.g. all denoise-step spans of one coalesced serve
/// batch) can be attributed to the request(s) it served.
pub fn trace_scope(trace: u64) -> TraceGuard {
    let prev = TRACE.with(|t| t.replace(Some(trace)));
    TraceGuard { prev }
}

impl Drop for TraceGuard {
    fn drop(&mut self) {
        TRACE.with(|t| t.set(self.prev));
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for one open span; emits a `span` event with the nested path,
/// span/parent ids, duration and self time on drop.
pub struct SpanGuard {
    data: Option<SpanData>,
}

struct SpanData {
    inner: Arc<Inner>,
    name: &'static str,
    path: String,
    prev_len: usize,
    sid: u64,
    parent: Option<u64>,
    trace: Option<u64>,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

/// Open a span; prefer the [`crate::span!`] macro at call sites.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Open a span carrying extra fields on its end event.
pub fn span_with(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
    let Some(inner) = current() else { return SpanGuard { data: None } };
    let (path, prev_len) = SPAN_PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev_len = p.len();
        if !p.is_empty() {
            p.push('/');
        }
        p.push_str(name);
        (p.clone(), prev_len)
    });
    let sid = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
    let parent = SPAN_STACK.with(|s| {
        let mut s = s.borrow_mut();
        let parent = s.last().map(|f| f.sid);
        s.push(SpanFrame { sid, child_ns: 0 });
        parent
    });
    let trace = current_trace();
    SpanGuard {
        data: Some(SpanData {
            inner,
            name,
            path,
            prev_len,
            sid,
            parent,
            trace,
            start: Instant::now(),
            fields,
        }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(d) = self.data.take() else { return };
        let dur = d.start.elapsed().as_nanos();
        SPAN_PATH.with(|p| p.borrow_mut().truncate(d.prev_len));
        // Pop this span's frame and charge its duration to the parent, so
        // the parent's eventual self time excludes time spent in children.
        let child_ns = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let frame = s.pop().expect("span stack underflow");
            debug_assert_eq!(frame.sid, d.sid, "span guards dropped out of order");
            if let Some(parent) = s.last_mut() {
                parent.child_ns += dur;
            }
            frame.child_ns
        });
        let self_ns = dur.saturating_sub(child_ns);
        let mut fields = vec![
            ("name", Value::S(d.name.into())),
            ("path", Value::S(d.path)),
            ("sid", Value::U(d.sid)),
        ];
        if let Some(parent) = d.parent {
            fields.push(("parent", Value::U(parent)));
        }
        if let Some(trace) = d.trace {
            fields.push(("trace", Value::U(trace)));
        }
        fields.extend(d.fields);
        fields.push(("dur_ns", Value::U(dur.min(u128::from(u64::MAX)) as u64)));
        fields.push(("self_ns", Value::U(self_ns.min(u128::from(u64::MAX)) as u64)));
        d.inner.emit("span", fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::JsonlSink;
    use std::sync::MutexGuard;

    /// Serialise recorder-installing tests (the recorder is process-global).
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn run_recorded(f: impl FnOnce()) -> Vec<String> {
        let path = std::env::temp_dir().join(format!(
            "st_obs_rec_test_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let _guard = install(vec![Box::new(JsonlSink::create(&path).unwrap())]);
            f();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        text.lines().map(String::from).collect()
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _g = lock();
        assert!(!is_enabled());
        let s = span("ignored");
        record_op(Phase::Fwd, "matmul", op_start(), 10);
        counter_add("nothing", 1.0);
        drop(s);
        flush(); // no recorder: no-op
    }

    #[test]
    fn spans_nest_and_ops_aggregate() {
        let _g = lock();
        let lines = run_recorded(|| {
            let _outer = crate::span!("outer");
            {
                let _inner = crate::span!("inner");
                record_op(Phase::Fwd, "matmul", op_start(), 100);
                record_op(Phase::Fwd, "matmul", op_start(), 50);
                record_op(Phase::Bwd, "matmul", op_start(), 50);
            }
        });
        let events: Vec<crate::json::Json> =
            lines.iter().map(|l| crate::json::parse(l).expect("valid JSONL")).collect();
        assert_eq!(events[0].get("ev").unwrap().as_str(), Some("header"));
        assert_eq!(events[0].get("schema").unwrap().as_str(), Some(SCHEMA));

        let spans: Vec<&crate::json::Json> =
            events.iter().filter(|e| e.get("ev").unwrap().as_str() == Some("span")).collect();
        assert_eq!(spans.len(), 2);
        // inner span ends (and is emitted) first, with the nested path
        assert_eq!(spans[0].get("path").unwrap().as_str(), Some("outer/inner"));
        assert_eq!(spans[1].get("path").unwrap().as_str(), Some("outer"));

        let ops: Vec<&crate::json::Json> =
            events.iter().filter(|e| e.get("ev").unwrap().as_str() == Some("op")).collect();
        assert_eq!(ops.len(), 2, "fwd.matmul and bwd.matmul aggregates");
        assert_eq!(ops[0].get("phase").unwrap().as_str(), Some("fwd"));
        assert_eq!(ops[0].get("calls").unwrap().as_u64(), Some(2));
        assert_eq!(ops[0].get("elements").unwrap().as_u64(), Some(150));
        assert_eq!(ops[1].get("phase").unwrap().as_str(), Some("bwd"));
    }

    #[test]
    fn timestamps_are_monotonic_within_stream() {
        let _g = lock();
        let lines = run_recorded(|| {
            for _ in 0..5 {
                counter_add("tick", 1.0);
            }
        });
        let mut last = 0u64;
        for l in &lines {
            let t = crate::json::parse(l).unwrap().get("t_ns").unwrap().as_u64().unwrap();
            assert!(t >= last, "t_ns must be monotonic");
            last = t;
        }
    }

    #[test]
    fn reinstall_after_uninstall_works() {
        let _g = lock();
        let a = run_recorded(|| counter_add("a", 1.0));
        let b = run_recorded(|| counter_add("a", 1.0));
        assert_eq!(a.len(), b.len());
        // identical after stripping timing fields
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                crate::event::strip_timing(x).unwrap(),
                crate::event::strip_timing(y).unwrap()
            );
        }
    }

    #[test]
    fn histograms_aggregate_until_flush() {
        let _g = lock();
        let lines = run_recorded(|| {
            hist_record("loss", 1.0);
            hist_record("loss", 3.0);
        });
        let hist = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .find(|e| e.get("ev").unwrap().as_str() == Some("hist"))
            .expect("hist event at flush");
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(hist.get("min").unwrap().as_f64(), Some(1.0));
        assert_eq!(hist.get("max").unwrap().as_f64(), Some(3.0));
        assert_eq!(hist.get("mean").unwrap().as_f64(), Some(2.0));
        // Bucketed percentile estimates stay within the observed range.
        let p50 = hist.get("p50").unwrap().as_f64().unwrap();
        let p999 = hist.get("p999").unwrap().as_f64().unwrap();
        assert!((1.0..=3.0).contains(&p50), "p50 {p50} outside observed range");
        assert!(p50 <= p999 && p999 <= 3.0, "p999 {p999} not ordered/clamped");
    }

    #[test]
    fn spans_carry_ids_parents_and_self_time() {
        let _g = lock();
        let lines = run_recorded(|| {
            let _outer = crate::span!("outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span!("inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        });
        let spans: Vec<crate::json::Json> = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .filter(|e| e.get("ev").unwrap().as_str() == Some("span"))
            .collect();
        assert_eq!(spans.len(), 2);
        let inner = &spans[0];
        let outer = &spans[1];
        let outer_sid = outer.get("sid").unwrap().as_u64().unwrap();
        assert_eq!(inner.get("parent").unwrap().as_u64(), Some(outer_sid));
        assert!(outer.get("parent").is_none(), "root span has no parent");
        // outer self time excludes inner's full duration
        let outer_dur = outer.get("dur_ns").unwrap().as_u64().unwrap();
        let outer_self = outer.get("self_ns").unwrap().as_u64().unwrap();
        let inner_dur = inner.get("dur_ns").unwrap().as_u64().unwrap();
        assert_eq!(inner.get("self_ns").unwrap().as_u64(), Some(inner_dur));
        assert_eq!(outer_self, outer_dur - inner_dur);
        assert!(outer_self < outer_dur, "outer must have charged inner as child time");
    }

    #[test]
    fn trace_scope_stamps_spans_and_restores() {
        let _g = lock();
        let lines = run_recorded(|| {
            {
                let _t = trace_scope(42);
                let _s = crate::span!("traced");
            }
            let _s = crate::span!("untraced");
        });
        let spans: Vec<crate::json::Json> = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .filter(|e| e.get("ev").unwrap().as_str() == Some("span"))
            .collect();
        assert_eq!(spans[0].get("name").unwrap().as_str(), Some("traced"));
        assert_eq!(spans[0].get("trace").unwrap().as_u64(), Some(42));
        assert_eq!(spans[1].get("name").unwrap().as_str(), Some("untraced"));
        assert!(spans[1].get("trace").is_none(), "trace scope must not leak");
        assert!(current_trace().is_none());
        // Nested scopes restore the outer trace, not None.
        let _a = trace_scope(1);
        {
            let _b = trace_scope(2);
            assert_eq!(current_trace(), Some(2));
        }
        assert_eq!(current_trace(), Some(1));
    }

    #[test]
    fn aggregated_counters_emit_once_sorted_at_flush() {
        let _g = lock();
        let lines = run_recorded(|| {
            counter_agg("pool.tasks", 1.0);
            counter_agg("pool.chunks", 4.0);
            counter_agg("pool.tasks", 2.0);
            counter_agg("pool.inline_runs", 0.0); // zero delta still creates the entry
        });
        let counters: Vec<crate::json::Json> = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .filter(|e| e.get("ev").unwrap().as_str() == Some("counter"))
            .collect();
        let names: Vec<&str> =
            counters.iter().map(|c| c.get("name").unwrap().as_str().unwrap()).collect();
        assert_eq!(names, ["pool.chunks", "pool.inline_runs", "pool.tasks"]);
        assert_eq!(counters[2].get("value").unwrap().as_f64(), Some(3.0));
        assert_eq!(counters[1].get("value").unwrap().as_f64(), Some(0.0));
    }

    #[test]
    fn par_dispatches_aggregate_with_efficiency() {
        let _g = lock();
        let lines = run_recorded(|| {
            record_par_gate("matmul", true);
            record_par_gate("matmul", false);
            // 2 threads busy 300ns each over a 400ns dispatch: eff = 600/800
            record_par_dispatch("matmul", 8, 2, 600, 400);
        });
        let par = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .find(|e| e.get("ev").unwrap().as_str() == Some("par"))
            .expect("par event at flush");
        assert_eq!(par.get("label").unwrap().as_str(), Some("matmul"));
        assert_eq!(par.get("dispatches").unwrap().as_u64(), Some(1));
        assert_eq!(par.get("chunks").unwrap().as_u64(), Some(8));
        assert_eq!(par.get("accept").unwrap().as_u64(), Some(1));
        assert_eq!(par.get("reject").unwrap().as_u64(), Some(1));
        assert_eq!(par.get("threads").unwrap().as_u64(), Some(2));
        assert_eq!(par.get("eff_pct").unwrap().as_f64(), Some(75.0));
    }

    #[test]
    fn small_sample_percentiles_fall_back_to_exact_max() {
        // Both sides of the count < 1/(1-q) boundary, directly on HistStat.
        let mut h =
            HistStat { count: 0, sum: 0.0, min: f64::MAX, max: f64::MIN, buckets: [0; HIST_BUCKETS] };
        let push = |h: &mut HistStat, v: f64| {
            h.count += 1;
            h.sum += v;
            h.min = h.min.min(v);
            h.max = h.max.max(v);
            h.buckets[hist_bucket(v)] += 1;
        };
        for i in 0..999 {
            push(&mut h, 1.0 + (i % 7) as f64);
        }
        push(&mut h, 4096.0); // single extreme outlier, own bucket
        // 999 samples: p999 needs >= 1000 -> exact max; p99 has enough.
        let mut h999 = h;
        h999.count = 999; // pretend the outlier was the 999th sample
        let (v, exact) = h999.percentile(0.999);
        assert!(exact, "999 samples must use the exact-tail path for p999");
        assert_eq!(v, h999.max);
        // 1000 samples: estimation kicks in (and the bucket estimate is
        // allowed to differ from the exact max).
        let (v, exact) = h.percentile(0.999);
        assert!(!exact, "1000 samples may estimate p999");
        assert!(v >= h.min && v <= h.max);
        // p50 boundary: a single sample is exact, two samples estimate.
        let mut one =
            HistStat { count: 0, sum: 0.0, min: f64::MAX, max: f64::MIN, buckets: [0; HIST_BUCKETS] };
        push(&mut one, 5.0);
        assert_eq!(one.percentile(0.50), (5.0, true));
        push(&mut one, 7.0);
        assert!(!one.percentile(0.50).1, "two samples cross the p50 boundary");
    }

    #[test]
    fn flushed_hist_marks_exact_tail() {
        let _g = lock();
        // 4 observations: p999 (and p99) must report the exact max, flagged.
        let lines = run_recorded(|| {
            for v in [1.0, 2.0, 3.0, 9.0] {
                hist_record("latency", v);
            }
        });
        let hist = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .find(|e| e.get("ev").unwrap().as_str() == Some("hist"))
            .expect("hist event at flush");
        assert_eq!(hist.get("p999").unwrap().as_f64(), Some(9.0));
        assert_eq!(hist.get("p99").unwrap().as_f64(), Some(9.0));
        assert_eq!(hist.get("exact_tail"), Some(&crate::json::Json::Bool(true)));
    }

    #[test]
    fn hist_percentiles_track_a_skewed_distribution() {
        let _g = lock();
        let lines = run_recorded(|| {
            // 90 fast observations at 1ms, 10 slow at 900ms: p50 must stay
            // in the fast mode, p999 must reach the slow tail's bucket.
            for _ in 0..90 {
                hist_record("lat", 1.0);
            }
            for _ in 0..10 {
                hist_record("lat", 900.0);
            }
        });
        let hist = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .find(|e| e.get("ev").unwrap().as_str() == Some("hist"))
            .expect("hist event at flush");
        let p50 = hist.get("p50").unwrap().as_f64().unwrap();
        let p999 = hist.get("p999").unwrap().as_f64().unwrap();
        assert!(p50 <= 2.0, "p50 {p50} should sit in the fast mode");
        assert!(p999 >= 500.0, "p999 {p999} should see the outlier");
    }
}
