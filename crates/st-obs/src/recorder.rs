//! The global recorder: near-zero cost when disabled, scoped installation,
//! thread-safe nested spans, and aggregated per-op timing.
//!
//! Design notes:
//!
//! * A single relaxed [`AtomicBool`] gates every instrumentation site. With
//!   no recorder installed, `span` / `op_start` / `record_op` are one atomic
//!   load and a branch — cheap enough to leave compiled into the tensor
//!   engine's innermost op dispatch.
//! * [`install`] returns a guard; dropping it flushes every sink and
//!   disables recording, so tests can scope telemetry to one run.
//! * Span nesting uses a thread-local path stack (`"train/epoch/train_step"`),
//!   so concurrent threads each get a coherent tree.
//! * Per-op timing is *aggregated* (`(phase, kind) -> calls/total_ns/elements`)
//!   rather than emitted per call: a training step records thousands of ops,
//!   and one `op` event per kind at flush keeps streams small and
//!   deterministic (events are emitted in sorted order).

use crate::event::{Event, Value, SCHEMA};
use crate::sink::Sink;
use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Which side of the pipeline an op timing belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Phase {
    /// Forward tape ops (`Graph` methods).
    Fwd,
    /// Backward gradient rules (`backprop`).
    Bwd,
    /// Optimizer / gradient post-processing.
    Opt,
}

impl Phase {
    /// Short lowercase tag used in events and summaries.
    pub fn as_str(self) -> &'static str {
        match self {
            Phase::Fwd => "fwd",
            Phase::Bwd => "bwd",
            Phase::Opt => "opt",
        }
    }
}

#[derive(Default, Clone, Copy)]
struct OpStat {
    calls: u64,
    total_ns: u128,
    elements: u64,
}

/// Log-spaced bucket count for histogram percentile estimation: bucket `i`
/// covers values whose `floor(log2(v))` is `i - 32`, spanning ~2⁻³² to ~2³²
/// (latencies in ms, queue depths, batch sizes all land comfortably inside).
const HIST_BUCKETS: usize = 64;

#[derive(Clone, Copy)]
struct HistStat {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
    /// Per-bucket observation counts (see [`HIST_BUCKETS`]); non-positive
    /// and non-finite values land in bucket 0.
    buckets: [u64; HIST_BUCKETS],
}

/// The log-spaced bucket a value falls into.
fn hist_bucket(value: f64) -> usize {
    if value <= 0.0 || !value.is_finite() {
        return 0;
    }
    (value.log2().floor() as i64 + 32).clamp(0, HIST_BUCKETS as i64 - 1) as usize
}

impl HistStat {
    /// Percentile estimate from the bucket counts: the upper bound of the
    /// first bucket whose cumulative count reaches `q·count`, clamped to the
    /// exact observed `[min, max]`. Within a factor of 2 of the true value —
    /// plenty for p50/p99/p999 trend lines in a summary.
    fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let upper = 2f64.powi(i as i32 - 31);
                return upper.clamp(self.min, self.max);
            }
        }
        self.max
    }
}

struct Inner {
    epoch: Instant,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    ops: Mutex<HashMap<(Phase, &'static str), OpStat>>,
    hists: Mutex<HashMap<&'static str, HistStat>>,
}

impl Inner {
    fn now_ns(&self) -> u128 {
        self.epoch.elapsed().as_nanos()
    }

    fn emit(&self, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        let e = Event::new(kind, self.now_ns(), fields);
        let mut sinks = self.sinks.lock().expect("st-obs sink lock");
        for s in sinks.iter_mut() {
            s.event(&e);
        }
    }

    /// Emit aggregated op/hist events (in sorted order, for determinism) and
    /// flush every sink. Aggregates are drained, so repeated flushes emit
    /// deltas.
    fn flush(&self) {
        let mut ops: Vec<((Phase, &'static str), OpStat)> =
            self.ops.lock().expect("st-obs ops lock").drain().collect();
        ops.sort_by_key(|&((phase, kind), _)| (phase, kind));
        for ((phase, kind), st) in ops {
            self.emit(
                "op",
                vec![
                    ("phase", Value::S(phase.as_str().into())),
                    ("kind", Value::S(kind.into())),
                    ("calls", Value::U(st.calls)),
                    ("total_ns", Value::U(st.total_ns.min(u128::from(u64::MAX)) as u64)),
                    ("elements", Value::U(st.elements)),
                ],
            );
        }
        let mut hists: Vec<(&'static str, HistStat)> =
            self.hists.lock().expect("st-obs hist lock").drain().collect();
        hists.sort_by_key(|&(name, _)| name);
        for (name, h) in hists {
            self.emit(
                "hist",
                vec![
                    ("name", Value::S(name.into())),
                    ("count", Value::U(h.count)),
                    ("min", Value::F(h.min)),
                    ("max", Value::F(h.max)),
                    ("mean", Value::F(if h.count > 0 { h.sum / h.count as f64 } else { 0.0 })),
                    ("p50", Value::F(h.percentile(0.50))),
                    ("p99", Value::F(h.percentile(0.99))),
                    ("p999", Value::F(h.percentile(0.999))),
                ],
            );
        }
        let mut sinks = self.sinks.lock().expect("st-obs sink lock");
        for s in sinks.iter_mut() {
            s.flush();
        }
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static CURRENT: Mutex<Option<Arc<Inner>>> = Mutex::new(None);

thread_local! {
    /// Slash-joined path of the spans currently open on this thread.
    static SPAN_PATH: RefCell<String> = const { RefCell::new(String::new()) };
}

fn current() -> Option<Arc<Inner>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    CURRENT.lock().expect("st-obs recorder lock").clone()
}

/// Install a recorder feeding the given sinks; recording stays active until
/// the returned guard is dropped. Panics if a recorder is already installed
/// (telemetry streams must not interleave).
pub fn install(sinks: Vec<Box<dyn Sink>>) -> RecorderGuard {
    let inner = Arc::new(Inner {
        epoch: Instant::now(),
        sinks: Mutex::new(sinks),
        ops: Mutex::new(HashMap::new()),
        hists: Mutex::new(HashMap::new()),
    });
    inner.emit("header", vec![("schema", Value::S(SCHEMA.into()))]);
    {
        let mut cur = CURRENT.lock().expect("st-obs recorder lock");
        assert!(cur.is_none(), "st-obs recorder already installed");
        *cur = Some(Arc::clone(&inner));
    }
    ENABLED.store(true, Ordering::SeqCst);
    RecorderGuard { inner }
}

/// True while a recorder is installed.
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Emit aggregated op/histogram events and flush all sinks now.
pub fn flush() {
    if let Some(inner) = current() {
        inner.flush();
    }
}

/// Scope handle returned by [`install`]; dropping it flushes and disables.
pub struct RecorderGuard {
    inner: Arc<Inner>,
}

impl Drop for RecorderGuard {
    fn drop(&mut self) {
        ENABLED.store(false, Ordering::SeqCst);
        *CURRENT.lock().expect("st-obs recorder lock") = None;
        self.inner.flush();
    }
}

/// Emit a custom event (no-op when disabled).
pub fn emit(kind: &'static str, fields: Vec<(&'static str, Value)>) {
    if let Some(inner) = current() {
        inner.emit(kind, fields);
    }
}

/// Emit a `counter` event (monotonic quantity, e.g. windows processed).
pub fn counter_add(name: &'static str, delta: f64) {
    if let Some(inner) = current() {
        inner.emit("counter", vec![("name", Value::S(name.into())), ("value", Value::F(delta))]);
    }
}

/// Emit a `gauge` event (point-in-time level, e.g. loss, lr, grad norm).
pub fn gauge_set(name: &'static str, value: f64) {
    if let Some(inner) = current() {
        inner.emit("gauge", vec![("name", Value::S(name.into())), ("value", Value::F(value))]);
    }
}

/// Record one observation into a named histogram (emitted aggregated at
/// flush: count/min/max/mean plus log-bucketed p50/p99/p999 estimates).
pub fn hist_record(name: &'static str, value: f64) {
    if let Some(inner) = current() {
        let mut hists = inner.hists.lock().expect("st-obs hist lock");
        let h = hists.entry(name).or_insert(HistStat {
            count: 0,
            sum: 0.0,
            min: value,
            max: value,
            buckets: [0; HIST_BUCKETS],
        });
        h.count += 1;
        h.sum += value;
        h.min = h.min.min(value);
        h.max = h.max.max(value);
        h.buckets[hist_bucket(value)] += 1;
    }
}

// ---------------------------------------------------------------------------
// Op timing
// ---------------------------------------------------------------------------

/// Opaque start-of-op token; `None` inside means recording was off when the
/// op began, making the whole round-trip two relaxed atomic loads.
#[derive(Debug, Clone, Copy)]
pub struct OpStart(Option<Instant>);

/// Capture an op start time iff recording is enabled.
#[inline]
pub fn op_start() -> OpStart {
    if ENABLED.load(Ordering::Relaxed) {
        OpStart(Some(Instant::now()))
    } else {
        OpStart(None)
    }
}

/// Fold one completed op into the `(phase, kind)` aggregate.
#[inline]
pub fn record_op(phase: Phase, kind: &'static str, start: OpStart, elements: u64) {
    let Some(t0) = start.0 else { return };
    let dur = t0.elapsed().as_nanos();
    if let Some(inner) = current() {
        let mut ops = inner.ops.lock().expect("st-obs ops lock");
        let st = ops.entry((phase, kind)).or_default();
        st.calls += 1;
        st.total_ns += dur;
        st.elements = st.elements.saturating_add(elements);
    }
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII guard for one open span; emits a `span` event with the nested path
/// and duration on drop.
pub struct SpanGuard {
    data: Option<SpanData>,
}

struct SpanData {
    inner: Arc<Inner>,
    name: &'static str,
    path: String,
    prev_len: usize,
    start: Instant,
    fields: Vec<(&'static str, Value)>,
}

/// Open a span; prefer the [`crate::span!`] macro at call sites.
pub fn span(name: &'static str) -> SpanGuard {
    span_with(name, Vec::new())
}

/// Open a span carrying extra fields on its end event.
pub fn span_with(name: &'static str, fields: Vec<(&'static str, Value)>) -> SpanGuard {
    let Some(inner) = current() else { return SpanGuard { data: None } };
    let (path, prev_len) = SPAN_PATH.with(|p| {
        let mut p = p.borrow_mut();
        let prev_len = p.len();
        if !p.is_empty() {
            p.push('/');
        }
        p.push_str(name);
        (p.clone(), prev_len)
    });
    SpanGuard {
        data: Some(SpanData { inner, name, path, prev_len, start: Instant::now(), fields }),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(d) = self.data.take() else { return };
        let dur = d.start.elapsed().as_nanos();
        SPAN_PATH.with(|p| p.borrow_mut().truncate(d.prev_len));
        let mut fields = vec![
            ("name", Value::S(d.name.into())),
            ("path", Value::S(d.path)),
        ];
        fields.extend(d.fields);
        fields.push(("dur_ns", Value::U(dur.min(u128::from(u64::MAX)) as u64)));
        d.inner.emit("span", fields);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::JsonlSink;
    use std::sync::MutexGuard;

    /// Serialise recorder-installing tests (the recorder is process-global).
    fn lock() -> MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn run_recorded(f: impl FnOnce()) -> Vec<String> {
        let path = std::env::temp_dir().join(format!(
            "st_obs_rec_test_{}_{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        {
            let _guard = install(vec![Box::new(JsonlSink::create(&path).unwrap())]);
            f();
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        text.lines().map(String::from).collect()
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _g = lock();
        assert!(!is_enabled());
        let s = span("ignored");
        record_op(Phase::Fwd, "matmul", op_start(), 10);
        counter_add("nothing", 1.0);
        drop(s);
        flush(); // no recorder: no-op
    }

    #[test]
    fn spans_nest_and_ops_aggregate() {
        let _g = lock();
        let lines = run_recorded(|| {
            let _outer = crate::span!("outer");
            {
                let _inner = crate::span!("inner");
                record_op(Phase::Fwd, "matmul", op_start(), 100);
                record_op(Phase::Fwd, "matmul", op_start(), 50);
                record_op(Phase::Bwd, "matmul", op_start(), 50);
            }
        });
        let events: Vec<crate::json::Json> =
            lines.iter().map(|l| crate::json::parse(l).expect("valid JSONL")).collect();
        assert_eq!(events[0].get("ev").unwrap().as_str(), Some("header"));
        assert_eq!(events[0].get("schema").unwrap().as_str(), Some(SCHEMA));

        let spans: Vec<&crate::json::Json> =
            events.iter().filter(|e| e.get("ev").unwrap().as_str() == Some("span")).collect();
        assert_eq!(spans.len(), 2);
        // inner span ends (and is emitted) first, with the nested path
        assert_eq!(spans[0].get("path").unwrap().as_str(), Some("outer/inner"));
        assert_eq!(spans[1].get("path").unwrap().as_str(), Some("outer"));

        let ops: Vec<&crate::json::Json> =
            events.iter().filter(|e| e.get("ev").unwrap().as_str() == Some("op")).collect();
        assert_eq!(ops.len(), 2, "fwd.matmul and bwd.matmul aggregates");
        assert_eq!(ops[0].get("phase").unwrap().as_str(), Some("fwd"));
        assert_eq!(ops[0].get("calls").unwrap().as_u64(), Some(2));
        assert_eq!(ops[0].get("elements").unwrap().as_u64(), Some(150));
        assert_eq!(ops[1].get("phase").unwrap().as_str(), Some("bwd"));
    }

    #[test]
    fn timestamps_are_monotonic_within_stream() {
        let _g = lock();
        let lines = run_recorded(|| {
            for _ in 0..5 {
                counter_add("tick", 1.0);
            }
        });
        let mut last = 0u64;
        for l in &lines {
            let t = crate::json::parse(l).unwrap().get("t_ns").unwrap().as_u64().unwrap();
            assert!(t >= last, "t_ns must be monotonic");
            last = t;
        }
    }

    #[test]
    fn reinstall_after_uninstall_works() {
        let _g = lock();
        let a = run_recorded(|| counter_add("a", 1.0));
        let b = run_recorded(|| counter_add("a", 1.0));
        assert_eq!(a.len(), b.len());
        // identical after stripping timing fields
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(
                crate::event::strip_timing(x).unwrap(),
                crate::event::strip_timing(y).unwrap()
            );
        }
    }

    #[test]
    fn histograms_aggregate_until_flush() {
        let _g = lock();
        let lines = run_recorded(|| {
            hist_record("loss", 1.0);
            hist_record("loss", 3.0);
        });
        let hist = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .find(|e| e.get("ev").unwrap().as_str() == Some("hist"))
            .expect("hist event at flush");
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(hist.get("min").unwrap().as_f64(), Some(1.0));
        assert_eq!(hist.get("max").unwrap().as_f64(), Some(3.0));
        assert_eq!(hist.get("mean").unwrap().as_f64(), Some(2.0));
        // Bucketed percentile estimates stay within the observed range.
        let p50 = hist.get("p50").unwrap().as_f64().unwrap();
        let p999 = hist.get("p999").unwrap().as_f64().unwrap();
        assert!((1.0..=3.0).contains(&p50), "p50 {p50} outside observed range");
        assert!(p50 <= p999 && p999 <= 3.0, "p999 {p999} not ordered/clamped");
    }

    #[test]
    fn hist_percentiles_track_a_skewed_distribution() {
        let _g = lock();
        let lines = run_recorded(|| {
            // 90 fast observations at 1ms, 10 slow at 900ms: p50 must stay
            // in the fast mode, p999 must reach the slow tail's bucket.
            for _ in 0..90 {
                hist_record("lat", 1.0);
            }
            for _ in 0..10 {
                hist_record("lat", 900.0);
            }
        });
        let hist = lines
            .iter()
            .map(|l| crate::json::parse(l).unwrap())
            .find(|e| e.get("ev").unwrap().as_str() == Some("hist"))
            .expect("hist event at flush");
        let p50 = hist.get("p50").unwrap().as_f64().unwrap();
        let p999 = hist.get("p999").unwrap().as_f64().unwrap();
        assert!(p50 <= 2.0, "p50 {p50} should sit in the fast mode");
        assert!(p999 >= 500.0, "p999 {p999} should see the outlier");
    }
}
