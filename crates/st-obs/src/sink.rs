//! Pluggable event sinks: machine-readable JSONL and a human-readable
//! span-tree summary.

use crate::event::{Event, Value, SCHEMA};
use std::collections::BTreeMap;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::time::Instant;

/// Receives every event the recorder emits.
///
/// Sinks are driven from whichever thread emits the event; the recorder holds
/// them behind a lock, so implementations only need `Send`.
pub trait Sink: Send {
    /// Handle one event.
    fn event(&mut self, e: &Event);
    /// Called when the recorder flushes or uninstalls.
    fn flush(&mut self) {}
}

/// Writes each event as one JSON object per line.
pub struct JsonlSink {
    w: BufWriter<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// Create (truncate) a JSONL file at `path`.
    pub fn create(path: &Path) -> io::Result<Self> {
        let file = std::fs::File::create(path)?;
        Ok(Self::from_writer(Box::new(file)))
    }

    /// Wrap an arbitrary writer.
    pub fn from_writer(w: Box<dyn Write + Send>) -> Self {
        Self { w: BufWriter::new(w) }
    }
}

impl Sink for JsonlSink {
    fn event(&mut self, e: &Event) {
        // Telemetry must never take the pipeline down: I/O errors are dropped.
        let _ = writeln!(self.w, "{}", e.to_json());
    }

    fn flush(&mut self) {
        let _ = self.w.flush();
    }
}

/// Aggregates span and op events and prints an indented tree summary to
/// stderr when flushed (and again on drop if new data arrived since).
#[derive(Default)]
pub struct SummarySink {
    /// Span path (slash-joined) -> (count, total ns).
    spans: BTreeMap<String, (u64, u128)>,
    /// (phase, op kind) -> (calls, total ns, elements).
    ops: BTreeMap<(String, String), (u64, u128, u64)>,
    dirty: bool,
}

impl SummarySink {
    /// New, empty summary sink.
    pub fn new() -> Self {
        Self::default()
    }

    fn render(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str("== st-obs span summary ==\n");
            let root_total: u128 = self
                .spans
                .iter()
                .filter(|(path, _)| !path.contains('/'))
                .map(|(_, (_, ns))| ns)
                .sum();
            for (path, (count, ns)) in &self.spans {
                let depth = path.matches('/').count();
                let name = path.rsplit('/').next().unwrap_or(path);
                let pct = if root_total > 0 { 100.0 * *ns as f64 / root_total as f64 } else { 0.0 };
                out.push_str(&format!(
                    "{:indent$}{name:<30} {count:>8}x {:>12.3} ms {pct:>6.1}%\n",
                    "",
                    *ns as f64 / 1e6,
                    indent = depth * 2
                ));
            }
        }
        if !self.ops.is_empty() {
            out.push_str("== st-obs op summary ==\n");
            for ((phase, kind), (calls, ns, elems)) in &self.ops {
                let per = if *calls > 0 { *ns / u128::from(*calls) } else { 0 };
                out.push_str(&format!(
                    "{phase:>4}.{kind:<24} {calls:>8}x {:>12.3} ms {per:>10} ns/call {elems:>14} elems\n",
                    *ns as f64 / 1e6
                ));
            }
        }
        out
    }
}

impl Sink for SummarySink {
    fn event(&mut self, e: &Event) {
        match e.kind {
            "span" => {
                let mut path = None;
                let mut dur = 0u128;
                for (k, v) in &e.fields {
                    match (*k, v) {
                        ("path", Value::S(s)) => path = Some(s.clone()),
                        ("dur_ns", Value::U(n)) => dur = u128::from(*n),
                        _ => {}
                    }
                }
                if let Some(p) = path {
                    let slot = self.spans.entry(p).or_insert((0, 0));
                    slot.0 += 1;
                    slot.1 += dur;
                    self.dirty = true;
                }
            }
            "op" => {
                let (mut phase, mut kind) = (String::new(), String::new());
                let (mut calls, mut ns, mut elems) = (0u64, 0u128, 0u64);
                for (k, v) in &e.fields {
                    match (*k, v) {
                        ("phase", Value::S(s)) => phase = s.clone(),
                        ("kind", Value::S(s)) => kind = s.clone(),
                        ("calls", Value::U(n)) => calls = *n,
                        ("total_ns", Value::U(n)) => ns = u128::from(*n),
                        ("elements", Value::U(n)) => elems = *n,
                        _ => {}
                    }
                }
                let slot = self.ops.entry((phase, kind)).or_insert((0, 0, 0));
                slot.0 += calls;
                slot.1 += ns;
                slot.2 += elems;
                self.dirty = true;
            }
            _ => {}
        }
    }

    fn flush(&mut self) {
        if self.dirty {
            eprint!("{}", self.render());
            self.dirty = false;
        }
    }
}

impl Drop for SummarySink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// A standalone JSONL event writer with its own monotonic epoch, for
/// telemetry streams that live outside the global recorder (e.g. the train
/// loop's `Reporter::Jsonl`). Writes the schema `header` event on creation.
pub struct JsonlWriter {
    sink: JsonlSink,
    epoch: Instant,
}

impl JsonlWriter {
    /// Create (truncate) a JSONL stream at `path` and write the header event.
    pub fn create(path: &Path) -> io::Result<Self> {
        Ok(Self::from_sink(JsonlSink::create(path)?))
    }

    /// Wrap an arbitrary writer (for tests).
    pub fn from_writer(w: Box<dyn Write + Send>) -> Self {
        Self::from_sink(JsonlSink::from_writer(w))
    }

    fn from_sink(mut sink: JsonlSink) -> Self {
        let epoch = Instant::now();
        sink.event(&Event::new("header", 0, vec![("schema", Value::S(SCHEMA.into()))]));
        Self { sink, epoch }
    }

    /// Write one event, stamping the relative timestamp.
    pub fn event(&mut self, kind: &'static str, fields: Vec<(&'static str, Value)>) {
        self.sink.event(&Event::new(kind, self.epoch.elapsed().as_nanos(), fields));
    }

    /// Flush buffered lines to the underlying writer.
    pub fn flush(&mut self) {
        self.sink.flush();
    }
}

impl Drop for JsonlWriter {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_writer_emits_header_and_events() {
        let path = std::env::temp_dir().join("st_obs_sink_test.jsonl");
        {
            let mut w = JsonlWriter::create(&path).unwrap();
            w.event("epoch", vec![("epoch", Value::U(0)), ("loss", Value::F(1.5))]);
        }
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let header = crate::json::parse(lines[0]).unwrap();
        assert_eq!(header.get("ev").unwrap().as_str(), Some("header"));
        assert_eq!(header.get("schema").unwrap().as_str(), Some(SCHEMA));
        let epoch = crate::json::parse(lines[1]).unwrap();
        assert_eq!(epoch.get("loss").unwrap().as_f64(), Some(1.5));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn summary_sink_aggregates_spans() {
        let mut s = SummarySink::new();
        for _ in 0..3 {
            s.event(&Event::new(
                "span",
                0,
                vec![("path", Value::S("train/epoch".into())), ("dur_ns", Value::U(1000))],
            ));
        }
        s.event(&Event::new(
            "span",
            0,
            vec![("path", Value::S("train".into())), ("dur_ns", Value::U(4000))],
        ));
        let text = s.render();
        assert!(text.contains("epoch"), "{text}");
        assert!(text.contains("3x"), "{text}");
        s.dirty = false; // silence drop output in tests
    }
}
