//! # st-obs
//!
//! Zero-dependency observability for the PriSTI-rs stack: scoped **spans**,
//! per-op **metrics** (counters / gauges / histograms / aggregated op
//! timings), and pluggable **sinks** — a machine-readable JSONL event stream
//! and a human-readable tree summary.
//!
//! The global recorder defaults to *off*; every instrumentation site then
//! costs one relaxed atomic load. Install a recorder to start collecting:
//!
//! ```
//! let jsonl = std::env::temp_dir().join("doc_run.jsonl");
//! {
//!     let _rec = st_obs::install(vec![
//!         Box::new(st_obs::JsonlSink::create(&jsonl).unwrap()),
//!         Box::new(st_obs::SummarySink::new()),
//!     ]);
//!     let _epoch = st_obs::span!("epoch");
//!     st_obs::gauge_set("train.loss", 0.42);
//!     let t0 = st_obs::op_start();
//!     // ... do the work being timed ...
//!     st_obs::record_op(st_obs::Phase::Fwd, "matmul", t0, 4096);
//! } // guard drop: aggregated op events written, sinks flushed
//! assert!(std::fs::read_to_string(&jsonl).unwrap().lines().count() >= 3);
//! ```
//!
//! ## Event stream contract (`st-obs/2`)
//!
//! One flat JSON object per line. `ev` is the kind, `t_ns` nanoseconds since
//! the recorder was installed (monotonic-relative — never wall clock).
//! Spans form a tree: each `span` event carries a stream-unique `sid`, its
//! parent's `parent` id (omitted at the root), an optional request-scoped
//! `trace` id (see [`trace_scope`]), and both `dur_ns` and `self_ns`.
//! Parallel regions aggregate per-dispatch telemetry into `par` events with
//! a computed efficiency. Run-varying fields are exactly those matched by
//! [`event::is_timing_field`] (`*_ns` and `wps`) and
//! [`event::is_id_field`] (`sid`/`parent`/`trace`/`batch`) plus the
//! activity/dispatch statistics; [`strip_timing`] removes them all, and two
//! same-seed runs — at any `ST_PAR_THREADS` — must then be byte-identical.
//! See DESIGN.md §13 for the full schema and migration notes from
//! `st-obs/1`.

#![warn(missing_docs)]

pub mod event;
pub mod json;
pub mod recorder;
pub mod sink;

pub use event::{is_id_field, is_timing_field, strip_timing, Event, Value, SCHEMA};
pub use recorder::{
    counter_add, counter_agg, current_trace, emit, flush, gauge_set, hist_record, install,
    is_enabled, next_trace_id, op_start, record_op, record_par_dispatch, record_par_gate, span,
    span_with, trace_scope, OpStart, Phase, RecorderGuard, SpanGuard, TraceGuard,
};
pub use sink::{JsonlSink, JsonlWriter, Sink, SummarySink};

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::F(v)
    }
}

impl From<f32> for Value {
    fn from(v: f32) -> Self {
        Value::F(f64::from(v))
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::B(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::S(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::S(v)
    }
}

/// Open a scoped span: `let _s = span!("epoch");` or, with extra fields on
/// the end event, `let _s = span!("denoise_step", t = t);`. Returns a
/// [`SpanGuard`]; the span closes (and its event is emitted) when the guard
/// drops.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {
        $crate::span_with($name, vec![$((stringify!($key), $crate::Value::from($value))),+])
    };
}
