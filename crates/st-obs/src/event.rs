//! The telemetry event model and its JSONL encoding.
//!
//! Every event serialises to one *flat* JSON object per line. Two field
//! names are reserved: `ev` (the event kind) and `t_ns` (nanoseconds since
//! the owning recorder/writer was created — monotonic-relative, never wall
//! clock, so two identical runs differ only in timing fields). All
//! duration-like fields end in `_ns`, which is what [`strip_timing`] keys on
//! to make determinism tests byte-stable.
//!
//! Schema `st-obs/2` extends `st-obs/1` with hierarchical span trees and
//! parallel attribution while keeping the flat one-line encoding:
//!
//! * `span` events carry a stream-unique id (`sid`), their parent span id
//!   (`parent`, omitted at the root), an optional request trace id
//!   (`trace`), and `self_ns` — the span's duration minus the summed
//!   durations of its direct children.
//! * `par` events (emitted at flush, one per dispatch label) aggregate
//!   per-dispatch thread-pool telemetry: dispatch/chunk counts,
//!   `worthwhile` accept/reject counts, summed busy and span nanoseconds,
//!   and the computed efficiency `eff_pct = busy / (threads × span)`.
//! * `trace` events link a request-scoped trace id to the coalesced batch
//!   trace id it was served under.
//! * `hist` events may carry `"exact_tail": true` when a reported
//!   percentile fell back to the exact maximum because the sample count
//!   was too small for a meaningful tail estimate.
//!
//! All ids are allocation-order-dependent and therefore run-varying; they
//! are stripped by [`strip_timing`] alongside the timing fields.

use crate::json::escape;

/// Schema tag written by the `header` event of every JSONL stream.
pub const SCHEMA: &str = "st-obs/2";

/// A field value; keeps events flat and trivially serialisable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Signed integer.
    I(i64),
    /// Unsigned integer (also used for nanosecond counts).
    U(u64),
    /// Floating point; non-finite values serialise as `null`.
    F(f64),
    /// String.
    S(String),
    /// Boolean (e.g. the `exact_tail` marker on histogram events).
    B(bool),
}

impl Value {
    fn write_json(&self, out: &mut String) {
        match self {
            Value::I(v) => out.push_str(&v.to_string()),
            Value::U(v) => out.push_str(&v.to_string()),
            Value::F(v) if v.is_finite() => out.push_str(&v.to_string()),
            Value::F(_) => out.push_str("null"),
            Value::S(s) => out.push_str(&escape(s)),
            Value::B(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

/// One telemetry event: a kind, a relative timestamp, and flat fields.
#[derive(Debug, Clone)]
pub struct Event {
    /// Event kind (`"header"`, `"span"`, `"counter"`, `"gauge"`, `"hist"`,
    /// `"op"`, or a domain kind like `"epoch"`).
    pub kind: &'static str,
    /// Nanoseconds since the recorder epoch (monotonic-relative).
    pub t_ns: u128,
    /// Flat key/value payload; keys must be unique and must not collide with
    /// `ev` / `t_ns`.
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// Build an event with the given kind, timestamp and fields.
    pub fn new(kind: &'static str, t_ns: u128, fields: Vec<(&'static str, Value)>) -> Self {
        Self { kind, t_ns, fields }
    }

    /// Serialise to a single JSON line (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64);
        out.push_str("{\"ev\":");
        out.push_str(&escape(self.kind));
        for (k, v) in &self.fields {
            out.push_str(",\"");
            out.push_str(k);
            out.push_str("\":");
            v.write_json(&mut out);
        }
        out.push_str(",\"t_ns\":");
        out.push_str(&self.t_ns.to_string());
        out.push('}');
        out
    }
}

/// True for field names that carry timing (and thus vary run-to-run):
/// anything ending in `_ns`, plus throughput in windows/sec (`wps`).
pub fn is_timing_field(key: &str) -> bool {
    key.ends_with("_ns") || key == "wps"
}

/// True for field names that carry stream-unique ids allocated from global
/// counters: span ids (`sid`), parent span ids (`parent`), and request /
/// batch trace ids (`trace`, `batch`). Allocation order depends on thread
/// interleaving and on how many spans earlier phases opened, so — like
/// timings — ids legitimately differ between two same-seed runs and are
/// stripped by [`strip_timing`].
pub fn is_id_field(key: &str) -> bool {
    matches!(key, "sid" | "parent" | "trace" | "batch")
}

/// True for metric names whose values reflect scheduling or allocator
/// activity rather than computed results: the `pool.` namespace (worker
/// claims, inline runs, buffer-pool hit rates), the `serve.` namespace
/// (queue depth, batch coalescing, per-worker latency histograms) and the
/// `stream.` namespace (per-tick latency, per-shard session gauges). Like
/// timings, these legitimately vary between two same-seed runs — a warm
/// buffer pool hits where a cold one missed, a racier queue coalesces larger
/// batches — so the determinism contract strips their values (the events
/// themselves, and thus event order/count, stay).
pub fn is_activity_metric(name: &str) -> bool {
    name.starts_with("pool.") || name.starts_with("serve.") || name.starts_with("stream.")
}

/// Fields of gauge/counter/hist events that carry activity-dependent values
/// and are stripped for activity metrics (see [`is_activity_metric`]).
const ACTIVITY_VALUE_FIELDS: [&str; 9] =
    ["value", "count", "min", "max", "mean", "p50", "p99", "p999", "exact_tail"];

/// Fields of `par` (per-dispatch parallel telemetry) events whose values
/// depend on the configured thread count and the `worthwhile` gate outcome:
/// dispatch/chunk counts, accept/reject tallies, participating-thread sums
/// and the computed efficiency. Stripped so streams stay byte-identical
/// across `ST_PAR_THREADS` values; the label set itself is thread-count
/// invariant because every gate/dispatch call site records its label
/// unconditionally.
const PAR_VALUE_FIELDS: [&str; 6] =
    ["dispatches", "chunks", "accept", "reject", "threads", "eff_pct"];

/// Re-serialise one JSONL line with every run-varying field removed: timing
/// fields, span/trace id fields, activity-dependent statistics on
/// gauge/counter/hist events for activity metrics, and thread-count
/// dependent values on `par` events.
///
/// Two same-seed runs of a deterministic pipeline — at *any*
/// `ST_PAR_THREADS` setting — must produce identical streams after this
/// transformation: the canonical stability contract that
/// `tests/determinism.rs` and the obs smoke test pin.
pub fn strip_timing(line: &str) -> Result<String, String> {
    let parsed = crate::json::parse(line)?;
    let crate::json::Json::Obj(pairs) = parsed else {
        return Err("JSONL line is not an object".into());
    };
    let ev = pairs.iter().find(|(k, _)| k == "ev").and_then(|(_, v)| v.as_str());
    let activity = matches!(ev, Some("gauge") | Some("counter") | Some("hist"))
        && matches!(
            pairs.iter().find(|(k, _)| k == "name").and_then(|(_, v)| v.as_str()),
            Some(name) if is_activity_metric(name)
        );
    let par = ev == Some("par");
    let mut out = String::with_capacity(line.len());
    out.push('{');
    let mut first = true;
    for (k, v) in pairs.iter().filter(|(k, _)| {
        !(is_timing_field(k)
            || is_id_field(k)
            || activity && ACTIVITY_VALUE_FIELDS.contains(&k.as_str())
            || par && PAR_VALUE_FIELDS.contains(&k.as_str()))
    }) {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&escape(k));
        out.push(':');
        write_json_value(v, &mut out);
    }
    out.push('}');
    Ok(out)
}

fn write_json_value(v: &crate::json::Json, out: &mut String) {
    use crate::json::Json;
    match v {
        Json::Null => out.push_str("null"),
        Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Json::Num(n) => out.push_str(&n.to_string()),
        Json::Str(s) => out.push_str(&escape(s)),
        Json::Arr(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_value(item, out);
            }
            out.push(']');
        }
        Json::Obj(pairs) => {
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&escape(k));
                out.push(':');
                write_json_value(val, out);
            }
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_serialises_flat_and_parses_back() {
        let e = Event::new(
            "epoch",
            1234,
            vec![("epoch", Value::U(3)), ("loss", Value::F(0.25)), ("tag", Value::S("a\"b".into()))],
        );
        let line = e.to_json();
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("ev").unwrap().as_str(), Some("epoch"));
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("loss").unwrap().as_f64(), Some(0.25));
        assert_eq!(v.get("tag").unwrap().as_str(), Some("a\"b"));
        assert_eq!(v.get("t_ns").unwrap().as_u64(), Some(1234));
    }

    #[test]
    fn non_finite_floats_become_null() {
        let e = Event::new("gauge", 0, vec![("value", Value::F(f64::NAN))]);
        let v = crate::json::parse(&e.to_json()).unwrap();
        assert_eq!(v.get("value"), Some(&crate::json::Json::Null));
    }

    #[test]
    fn strip_timing_removes_only_timing_fields() {
        let e = Event::new(
            "span",
            999,
            vec![
                ("path", Value::S("train/epoch".into())),
                ("dur_ns", Value::U(417)),
                ("wps", Value::F(12.5)),
                ("count", Value::U(2)),
            ],
        );
        let stripped = strip_timing(&e.to_json()).unwrap();
        assert_eq!(stripped, r#"{"ev":"span","path":"train/epoch","count":2}"#);
    }

    #[test]
    fn strip_timing_drops_activity_metric_statistics() {
        // serve.* histograms carry scheduling-dependent latency stats; after
        // stripping, two runs with different latencies must be identical.
        let a = Event::new(
            "hist",
            1,
            vec![
                ("name", Value::S("serve.worker0.latency_ms".into())),
                ("count", Value::U(4)),
                ("min", Value::F(1.0)),
                ("max", Value::F(9.0)),
                ("mean", Value::F(4.0)),
                ("p50", Value::F(3.0)),
                ("p99", Value::F(9.0)),
                ("p999", Value::F(9.0)),
            ],
        );
        let b = Event::new(
            "hist",
            2,
            vec![
                ("name", Value::S("serve.worker0.latency_ms".into())),
                ("count", Value::U(7)),
                ("min", Value::F(0.5)),
                ("max", Value::F(20.0)),
                ("mean", Value::F(6.0)),
                ("p50", Value::F(5.0)),
                ("p99", Value::F(19.0)),
                ("p999", Value::F(20.0)),
            ],
        );
        let stripped = strip_timing(&a.to_json()).unwrap();
        assert_eq!(stripped, strip_timing(&b.to_json()).unwrap());
        assert_eq!(stripped, r#"{"ev":"hist","name":"serve.worker0.latency_ms"}"#);
        // Non-activity histograms keep their statistics.
        let c = Event::new(
            "hist",
            3,
            vec![("name", Value::S("train.loss".into())), ("count", Value::U(4))],
        );
        assert_eq!(strip_timing(&c.to_json()).unwrap(), r#"{"ev":"hist","name":"train.loss","count":4}"#);
    }

    #[test]
    fn strip_timing_removes_span_and_trace_ids() {
        let a = Event::new(
            "span",
            10,
            vec![
                ("name", Value::S("denoise_step".into())),
                ("sid", Value::U(41)),
                ("parent", Value::U(40)),
                ("trace", Value::U(7)),
                ("t", Value::U(3)),
                ("dur_ns", Value::U(999)),
                ("self_ns", Value::U(900)),
            ],
        );
        let b = Event::new(
            "span",
            20,
            vec![
                ("name", Value::S("denoise_step".into())),
                ("sid", Value::U(1041)),
                ("parent", Value::U(1040)),
                ("trace", Value::U(93)),
                ("t", Value::U(3)),
                ("dur_ns", Value::U(123)),
                ("self_ns", Value::U(50)),
            ],
        );
        let stripped = strip_timing(&a.to_json()).unwrap();
        assert_eq!(stripped, strip_timing(&b.to_json()).unwrap());
        assert_eq!(stripped, r#"{"ev":"span","name":"denoise_step","t":3}"#);
    }

    #[test]
    fn strip_timing_removes_par_dispatch_values_but_keeps_label() {
        let a = Event::new(
            "par",
            5,
            vec![
                ("label", Value::S("matmul".into())),
                ("dispatches", Value::U(12)),
                ("chunks", Value::U(48)),
                ("accept", Value::U(10)),
                ("reject", Value::U(2)),
                ("threads", Value::U(4)),
                ("busy_ns", Value::U(1000)),
                ("span_ns", Value::U(400)),
                ("eff_pct", Value::F(62.5)),
            ],
        );
        let b = Event::new(
            "par",
            9,
            vec![
                ("label", Value::S("matmul".into())),
                ("dispatches", Value::U(0)),
                ("chunks", Value::U(0)),
                ("accept", Value::U(0)),
                ("reject", Value::U(12)),
                ("threads", Value::U(1)),
                ("busy_ns", Value::U(7)),
                ("span_ns", Value::U(7)),
                ("eff_pct", Value::F(100.0)),
            ],
        );
        let stripped = strip_timing(&a.to_json()).unwrap();
        assert_eq!(stripped, strip_timing(&b.to_json()).unwrap());
        assert_eq!(stripped, r#"{"ev":"par","label":"matmul"}"#);
    }

    #[test]
    fn bool_values_serialise_and_exact_tail_survives_on_result_metrics() {
        let e = Event::new(
            "hist",
            3,
            vec![
                ("name", Value::S("train.epoch_loss".into())),
                ("count", Value::U(4)),
                ("exact_tail", Value::B(true)),
            ],
        );
        let line = e.to_json();
        let v = crate::json::parse(&line).unwrap();
        assert_eq!(v.get("exact_tail"), Some(&crate::json::Json::Bool(true)));
        // exact_tail is count-derived, thus deterministic for result metrics
        // and kept; for activity metrics it is stripped with the other stats.
        assert_eq!(
            strip_timing(&line).unwrap(),
            r#"{"ev":"hist","name":"train.epoch_loss","count":4,"exact_tail":true}"#
        );
        let act = Event::new(
            "hist",
            3,
            vec![
                ("name", Value::S("serve.latency_ms".into())),
                ("count", Value::U(4)),
                ("exact_tail", Value::B(true)),
            ],
        );
        assert_eq!(strip_timing(&act.to_json()).unwrap(), r#"{"ev":"hist","name":"serve.latency_ms"}"#);
    }

    #[test]
    fn strip_timing_is_stable_across_identical_events() {
        let a = Event::new("op", 1, vec![("kind", Value::S("matmul".into())), ("total_ns", Value::U(5))]);
        let b = Event::new("op", 777, vec![("kind", Value::S("matmul".into())), ("total_ns", Value::U(9))]);
        assert_eq!(strip_timing(&a.to_json()).unwrap(), strip_timing(&b.to_json()).unwrap());
    }
}
