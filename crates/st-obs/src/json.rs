//! A minimal JSON reader/writer, just large enough to validate and inspect
//! the telemetry this crate emits (and for tests to parse `BENCH_micro.json`).
//!
//! Not a general-purpose JSON library: numbers are `f64`, objects preserve
//! insertion order as a `Vec` of pairs, and no effort is made to accept the
//! darker corners of the grammar (`\u` escapes outside the BMP, etc.). Every
//! document *this crate writes* round-trips through [`parse`].

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string (escapes decoded).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs kept in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Field lookup on an object (first match wins).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Parse one complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_obj(b, pos),
        Some(b'[') => parse_arr(b, pos),
        Some(b'"') => Ok(Json::Str(parse_string(b, pos)?)),
        Some(b't') => parse_lit(b, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_lit(b, pos, "null", Json::Null),
        Some(_) => parse_num(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Json) -> Result<Json, String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_num(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>().map(Json::Num).map_err(|_| format!("bad number `{text}` at byte {start}"))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(b[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape `{hex}`"))?;
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass through).
                let rest = std::str::from_utf8(&b[*pos..]).map_err(|e| e.to_string())?;
                let ch = rest.chars().next().unwrap();
                out.push(ch);
                *pos += ch.len_utf8();
            }
        }
    }
}

fn parse_arr(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            other => return Err(format!("expected `,` or `]`, got {other:?}")),
        }
    }
}

fn parse_obj(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    *pos += 1; // '{'
    let mut pairs = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(format!("expected `:` at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        pairs.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            other => return Err(format!("expected `,` or `}}`, got {other:?}")),
        }
    }
}

/// Escape a string into a JSON string literal (including the quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_basic_values() {
        let doc = r#"{"a":1,"b":-2.5,"c":"x\"y","d":[true,false,null],"e":{}}"#;
        let v = parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().as_f64(), Some(-2.5));
        assert_eq!(v.get("c").unwrap().as_str(), Some("x\"y"));
        assert_eq!(v.get("d").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("e"), Some(&Json::Obj(vec![])));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}extra").is_err());
        assert!(parse(r#"{"a":}"#).is_err());
        assert!(parse("[1,]").is_err());
    }

    #[test]
    fn escape_round_trip() {
        let s = "line\nwith \"quotes\" and \\slashes\\ and \t tabs";
        let parsed = parse(&escape(s)).unwrap();
        assert_eq!(parsed.as_str(), Some(s));
    }

    #[test]
    fn parses_scientific_numbers() {
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(parse("-2.5E-2").unwrap().as_f64(), Some(-0.025));
    }

    #[test]
    fn parses_deeply_nested_documents() {
        // 128 levels of arrays, then of objects: the recursive-descent parser
        // must handle depth well beyond anything the event stream produces.
        const DEPTH: usize = 128;
        let arrays = format!("{}7{}", "[".repeat(DEPTH), "]".repeat(DEPTH));
        let mut v = &parse(&arrays).unwrap();
        for _ in 0..DEPTH {
            v = &v.as_arr().unwrap()[0];
        }
        assert_eq!(v.as_u64(), Some(7));

        let objects =
            format!("{}3{}", "{\"k\":".repeat(DEPTH), "}".repeat(DEPTH));
        let mut v = &parse(&objects).unwrap();
        for _ in 0..DEPTH {
            v = v.get("k").unwrap();
        }
        assert_eq!(v.as_u64(), Some(3));
    }

    #[test]
    fn decodes_every_escape_including_unicode() {
        let doc = r#""a\"b\\c\/d\ne\tf\rg\bh\fiéA""#;
        let parsed = parse(doc).unwrap();
        assert_eq!(parsed.as_str(), Some("a\"b\\c/d\ne\tf\rg\u{8}h\u{c}i\u{e9}A"));
        // Escape writes control characters as \u escapes; the decoder must
        // round-trip them.
        let s = "\u{1} control \u{1f} and é plain";
        assert_eq!(parse(&escape(s)).unwrap().as_str(), Some(s));
        // Truncated and malformed escapes are rejected, not mangled.
        assert!(parse(r#""\u00""#).is_err());
        assert!(parse(r#""\u00zz""#).is_err());
        assert!(parse(r#""\q""#).is_err());
    }

    /// Every `st-obs/2` event shape must round-trip through [`parse`]:
    /// header, span (ids + self time + trace), op, counter, gauge, hist
    /// (with the `exact_tail` bool), par, trace link, and epoch.
    #[test]
    fn round_trips_every_st_obs_2_event_shape() {
        use crate::event::{Event, Value};
        let shapes: Vec<Event> = vec![
            Event::new("header", 0, vec![("schema", Value::S(crate::SCHEMA.into()))]),
            Event::new(
                "span",
                10,
                vec![
                    ("name", Value::S("denoise_step".into())),
                    ("path", Value::S("serve_batch/impute/denoise_step".into())),
                    ("sid", Value::U(12)),
                    ("parent", Value::U(11)),
                    ("trace", Value::U(3)),
                    ("t", Value::U(8)),
                    ("dur_ns", Value::U(1234)),
                    ("self_ns", Value::U(1200)),
                ],
            ),
            Event::new(
                "op",
                20,
                vec![
                    ("phase", Value::S("fwd".into())),
                    ("kind", Value::S("matmul".into())),
                    ("calls", Value::U(4)),
                    ("total_ns", Value::U(987)),
                    ("elements", Value::U(4096)),
                ],
            ),
            Event::new(
                "counter",
                30,
                vec![("name", Value::S("pool.tasks".into())), ("value", Value::F(2.0))],
            ),
            Event::new(
                "gauge",
                40,
                vec![("name", Value::S("train.loss".into())), ("value", Value::F(-0.25))],
            ),
            Event::new(
                "hist",
                50,
                vec![
                    ("name", Value::S("serve.latency_ms".into())),
                    ("count", Value::U(3)),
                    ("min", Value::F(0.5)),
                    ("max", Value::F(2.5)),
                    ("mean", Value::F(1.5)),
                    ("p50", Value::F(1.0)),
                    ("p99", Value::F(2.5)),
                    ("p999", Value::F(2.5)),
                    ("exact_tail", Value::B(true)),
                ],
            ),
            Event::new(
                "par",
                60,
                vec![
                    ("label", Value::S("matmul".into())),
                    ("dispatches", Value::U(2)),
                    ("chunks", Value::U(8)),
                    ("accept", Value::U(2)),
                    ("reject", Value::U(1)),
                    ("threads", Value::U(4)),
                    ("busy_ns", Value::U(500)),
                    ("span_ns", Value::U(200)),
                    ("eff_pct", Value::F(62.5)),
                ],
            ),
            Event::new(
                "trace",
                70,
                vec![("trace", Value::U(5)), ("batch", Value::U(9)), ("request", Value::U(41))],
            ),
            Event::new(
                "epoch",
                80,
                vec![
                    ("epoch", Value::U(1)),
                    ("loss", Value::F(0.125)),
                    ("grad_norm", Value::F(1.5)),
                    ("lr", Value::F(0.001)),
                    ("wps", Value::F(1e6)),
                ],
            ),
        ];
        for e in shapes {
            let line = e.to_json();
            let parsed = parse(&line).unwrap_or_else(|err| panic!("{line}: {err}"));
            assert_eq!(parsed.get("ev").and_then(Json::as_str), Some(e.kind));
            assert_eq!(parsed.get("t_ns").and_then(Json::as_u64), Some(e.t_ns as u64));
            for (k, v) in &e.fields {
                let got = parsed.get(k).unwrap_or_else(|| panic!("{line}: missing {k}"));
                match v {
                    Value::U(n) => assert_eq!(got.as_u64(), Some(*n), "{line}: {k}"),
                    Value::I(n) => assert_eq!(got.as_f64(), Some(*n as f64), "{line}: {k}"),
                    Value::F(f) => assert_eq!(got.as_f64(), Some(*f), "{line}: {k}"),
                    Value::S(s) => assert_eq!(got.as_str(), Some(s.as_str()), "{line}: {k}"),
                    Value::B(b) => assert_eq!(got, &Json::Bool(*b), "{line}: {k}"),
                }
            }
        }
    }
}
