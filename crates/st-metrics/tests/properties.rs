//! Property-based tests for the evaluation metrics.

use st_check::prelude::*;
use st_metrics::{crps_single, masked_mae, masked_mse, quantile_of_sorted, MaskedErrors};

properties! {
    /// CRPS is non-negative for any ensemble and target.
    #[test]
    fn crps_non_negative(samples in prop::collection::vec(-100.0f32..100.0, 2..40), x in -100.0f64..100.0) {
        let mut s = samples;
        prop_assert!(crps_single(&mut s, x) >= -1e-9);
    }

    /// CRPS is translation-equivariant: shifting samples and target together
    /// leaves it unchanged.
    #[test]
    fn crps_translation_invariant(samples in prop::collection::vec(-50.0f32..50.0, 3..30), x in -50.0f64..50.0, shift in -20.0f32..20.0) {
        let mut a = samples.clone();
        let mut b: Vec<f32> = samples.iter().map(|v| v + shift).collect();
        let ca = crps_single(&mut a, x);
        let cb = crps_single(&mut b, x + shift as f64);
        prop_assert!((ca - cb).abs() < 1e-3 * (1.0 + ca.abs()), "{ca} vs {cb}");
    }

    /// CRPS scales linearly with the data scale.
    #[test]
    fn crps_scale_equivariant(samples in prop::collection::vec(-20.0f32..20.0, 3..30), x in -20.0f64..20.0, c in 0.5f32..5.0) {
        let mut a = samples.clone();
        let mut b: Vec<f32> = samples.iter().map(|v| v * c).collect();
        let ca = crps_single(&mut a, x);
        let cb = crps_single(&mut b, x * c as f64);
        prop_assert!((cb - ca * c as f64).abs() < 1e-2 * (1.0 + cb.abs()), "{cb} vs {}", ca * c as f64);
    }

    /// Quantiles are monotone in alpha and bounded by the sample range.
    #[test]
    fn quantiles_monotone_and_bounded(mut samples in prop::collection::vec(-100.0f32..100.0, 1..30)) {
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let mut prev = f64::MIN;
        for i in 0..=10 {
            let alpha = i as f64 / 10.0;
            let q = quantile_of_sorted(&samples, alpha);
            prop_assert!(q >= prev - 1e-9, "quantiles not monotone");
            prop_assert!(q >= samples[0] as f64 - 1e-6);
            prop_assert!(q <= *samples.last().unwrap() as f64 + 1e-6);
            prev = q;
        }
    }

    /// MAE² ≤ MSE (Jensen) on any fully-masked data.
    #[test]
    fn mae_squared_below_mse(pred in prop::collection::vec(-50.0f32..50.0, 1..50), seed in 0u64..100) {
        let target: Vec<f32> = pred.iter().enumerate().map(|(i, &p)| p + ((seed as f32 + i as f32).sin() * 5.0)).collect();
        let mask = vec![1.0f32; pred.len()];
        let mae = masked_mae(&pred, &target, &mask);
        let mse = masked_mse(&pred, &target, &mask);
        prop_assert!(mae * mae <= mse + 1e-6, "MAE² {} > MSE {}", mae * mae, mse);
    }

    /// Accumulating in any split order gives the same totals.
    #[test]
    fn accumulator_order_independent(vals in prop::collection::vec((-10.0f32..10.0, -10.0f32..10.0), 2..40), cut in 1usize..39) {
        let cut = cut.min(vals.len() - 1);
        let pred: Vec<f32> = vals.iter().map(|v| v.0).collect();
        let tgt: Vec<f32> = vals.iter().map(|v| v.1).collect();
        let mask = vec![1.0f32; vals.len()];
        let mut whole = MaskedErrors::new();
        whole.update(&pred, &tgt, &mask);
        let mut a = MaskedErrors::new();
        a.update(&pred[..cut], &tgt[..cut], &mask[..cut]);
        let mut b = MaskedErrors::new();
        b.update(&pred[cut..], &tgt[cut..], &mask[cut..]);
        a.merge(&b);
        prop_assert!((whole.mae() - a.mae()).abs() < 1e-9);
        prop_assert!((whole.mse() - a.mse()).abs() < 1e-9);
    }

    /// A degenerate (single-value) ensemble at the target scores ~0; moving
    /// the ensemble away strictly increases CRPS.
    #[test]
    fn crps_increases_with_distance(x in -10.0f64..10.0, d1 in 0.1f64..5.0, d2 in 5.1f64..20.0) {
        let mut near = vec![(x + d1) as f32; 10];
        let mut far = vec![(x + d2) as f32; 10];
        prop_assert!(crps_single(&mut near, x) < crps_single(&mut far, x));
    }
}
