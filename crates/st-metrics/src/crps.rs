//! Continuous Ranked Probability Score (paper Eqs. 10–12).
//!
//! The imputation distribution is approximated by a sample ensemble; CRPS is
//! computed from the quantile loss `Λ_α(q, x) = (α − 𝟙[x < q])(x − q)`
//! discretised at the 19 quantile levels `0.05, 0.10, …, 0.95`, matching the
//! CSDI/PriSTI evaluation protocol exactly.

/// Quantile levels used in the paper (0.05 ticks).
pub const QUANTILE_LEVELS: [f64; 19] = [
    0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45, 0.50, 0.55, 0.60, 0.65, 0.70, 0.75,
    0.80, 0.85, 0.90, 0.95,
];

/// Linear-interpolation quantile of an ascending-sorted slice.
pub fn quantile_of_sorted(sorted: &[f32], alpha: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample set");
    assert!((0.0..=1.0).contains(&alpha), "alpha out of range: {alpha}");
    let n = sorted.len();
    if n == 1 {
        return sorted[0] as f64;
    }
    let pos = alpha * (n - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

/// CRPS of a single missing value `x` against an (unsorted) sample ensemble.
pub fn crps_single(samples: &mut [f32], x: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("NaN in CRPS sample"));
    let mut acc = 0.0;
    for &alpha in &QUANTILE_LEVELS {
        let q = quantile_of_sorted(samples, alpha);
        let indicator = if x < q { 1.0 } else { 0.0 };
        acc += 2.0 * (alpha - indicator) * (x - q);
    }
    acc / QUANTILE_LEVELS.len() as f64
}

/// Mean CRPS over all masked positions.
///
/// `samples` is `[S, P]` flattened (S ensembles over P positions); `target`
/// and `mask` are length `P`. Positions with `mask <= 0` are skipped.
pub fn crps_ensemble(samples: &[f32], n_samples: usize, target: &[f32], mask: &[f32]) -> f64 {
    let p = target.len();
    assert_eq!(samples.len(), n_samples * p, "ensemble size mismatch");
    assert_eq!(mask.len(), p, "mask length mismatch");
    let mut acc = 0.0;
    let mut count = 0usize;
    let mut buf = vec![0.0f32; n_samples];
    for i in 0..p {
        if mask[i] <= 0.0 {
            continue;
        }
        for s in 0..n_samples {
            buf[s] = samples[s * p + i];
        }
        acc += crps_single(&mut buf, target[i] as f64);
        count += 1;
    }
    if count == 0 {
        0.0
    } else {
        acc / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_of_sorted_interpolate() {
        let s = [0.0f32, 1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile_of_sorted(&s, 0.0), 0.0);
        assert_eq!(quantile_of_sorted(&s, 1.0), 4.0);
        assert_eq!(quantile_of_sorted(&s, 0.5), 2.0);
        assert!((quantile_of_sorted(&s, 0.25) - 1.0).abs() < 1e-12);
        assert!((quantile_of_sorted(&s, 0.1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn crps_zero_for_point_mass_on_target() {
        let mut s = vec![3.0f32; 50];
        let v = crps_single(&mut s, 3.0);
        assert!(v.abs() < 1e-9, "point mass at target should give ~0 CRPS, got {v}");
    }

    #[test]
    fn crps_grows_with_distance() {
        let mut near = vec![0.0f32; 30];
        let mut far = vec![0.0f32; 30];
        let c_near = crps_single(&mut near, 1.0);
        let c_far = crps_single(&mut far, 5.0);
        assert!(c_far > c_near);
    }

    #[test]
    fn crps_prefers_sharp_correct_over_diffuse() {
        // Both centred on the target, but one is tighter.
        let mut sharp: Vec<f32> = (0..100).map(|i| (i as f32 - 49.5) * 0.01).collect();
        let mut diffuse: Vec<f32> = (0..100).map(|i| (i as f32 - 49.5) * 0.2).collect();
        let cs = crps_single(&mut sharp, 0.0);
        let cd = crps_single(&mut diffuse, 0.0);
        assert!(cs < cd, "sharp {cs} should beat diffuse {cd}");
    }

    #[test]
    fn ensemble_respects_mask() {
        // 2 samples, 2 positions; second position masked out and wildly wrong.
        let samples = vec![1.0f32, 100.0, 1.0, 100.0];
        let target = vec![1.0f32, 0.0];
        let mask = vec![1.0f32, 0.0];
        let v = crps_ensemble(&samples, 2, &target, &mask);
        assert!(v.abs() < 1e-9, "masked-out position leaked into CRPS: {v}");
    }

    #[test]
    fn ensemble_empty_mask_zero() {
        let samples = vec![1.0f32, 2.0];
        let target = vec![0.0f32];
        let mask = vec![0.0f32];
        assert_eq!(crps_ensemble(&samples, 2, &target, &mask), 0.0);
    }

    /// CRPS should approximate E|X - x| - E|X - X'|/2 for a sample ensemble.
    #[test]
    fn crps_close_to_energy_form() {
        // Uniform ensemble on [0,1], target 0.5.
        let n = 200;
        let mut s: Vec<f32> = (0..n).map(|i| i as f32 / (n - 1) as f32).collect();
        let c = crps_single(&mut s, 0.5);
        // closed form for U(0,1), x=0.5: E|X-0.5| = 0.25, E|X-X'| = 1/3
        let expected = 0.25 - 1.0 / 6.0;
        assert!((c - expected).abs() < 0.02, "crps {c} vs energy form {expected}");
    }
}
