//! Masked deterministic error metrics.
//!
//! All evaluations in the paper are computed **only on the manually masked
//! positions of the test set** (Section IV-D), so every metric here takes an
//! evaluation mask with 1 marking positions that count.

/// Accumulator for masked absolute and squared errors, usable across batches.
#[derive(Debug, Default, Clone, Copy)]
pub struct MaskedErrors {
    abs_sum: f64,
    sq_sum: f64,
    count: f64,
}

impl MaskedErrors {
    /// Create an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate a batch of predictions against targets where `mask > 0`.
    pub fn update(&mut self, pred: &[f32], target: &[f32], mask: &[f32]) {
        assert_eq!(pred.len(), target.len(), "pred/target length mismatch");
        assert_eq!(pred.len(), mask.len(), "pred/mask length mismatch");
        for ((&p, &t), &m) in pred.iter().zip(target).zip(mask) {
            if m > 0.0 {
                let d = (p - t) as f64;
                self.abs_sum += d.abs();
                self.sq_sum += d * d;
                self.count += 1.0;
            }
        }
    }

    /// Number of evaluated positions.
    pub fn count(&self) -> f64 {
        self.count
    }

    /// Mean absolute error over accumulated positions.
    pub fn mae(&self) -> f64 {
        if self.count == 0.0 {
            0.0
        } else {
            self.abs_sum / self.count
        }
    }

    /// Mean squared error over accumulated positions.
    pub fn mse(&self) -> f64 {
        if self.count == 0.0 {
            0.0
        } else {
            self.sq_sum / self.count
        }
    }

    /// Root mean squared error.
    pub fn rmse(&self) -> f64 {
        self.mse().sqrt()
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &MaskedErrors) {
        self.abs_sum += other.abs_sum;
        self.sq_sum += other.sq_sum;
        self.count += other.count;
    }
}

/// One-shot masked MAE.
pub fn masked_mae(pred: &[f32], target: &[f32], mask: &[f32]) -> f64 {
    let mut acc = MaskedErrors::new();
    acc.update(pred, target, mask);
    acc.mae()
}

/// One-shot masked MSE.
pub fn masked_mse(pred: &[f32], target: &[f32], mask: &[f32]) -> f64 {
    let mut acc = MaskedErrors::new();
    acc.update(pred, target, mask);
    acc.mse()
}

/// One-shot masked RMSE.
pub fn masked_rmse(pred: &[f32], target: &[f32], mask: &[f32]) -> f64 {
    masked_mse(pred, target, mask).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_values() {
        let pred = [1.0, 2.0, 5.0];
        let target = [1.0, 4.0, 1.0];
        let mask = [1.0, 1.0, 1.0];
        assert!((masked_mae(&pred, &target, &mask) - 2.0).abs() < 1e-12);
        assert!((masked_mse(&pred, &target, &mask) - (4.0 + 16.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn mask_excludes_positions() {
        let pred = [0.0, 100.0];
        let target = [0.0, 0.0];
        let mask = [1.0, 0.0];
        assert_eq!(masked_mae(&pred, &target, &mask), 0.0);
        assert_eq!(masked_mse(&pred, &target, &mask), 0.0);
    }

    #[test]
    fn empty_mask_is_zero_not_nan() {
        let acc = MaskedErrors::new();
        assert_eq!(acc.mae(), 0.0);
        assert_eq!(acc.mse(), 0.0);
        assert_eq!(acc.rmse(), 0.0);
    }

    #[test]
    fn merge_equals_single_pass() {
        let pred = [1.0f32, 2.0, 3.0, 4.0];
        let target = [0.0f32, 0.0, 0.0, 0.0];
        let mask = [1.0f32, 1.0, 0.0, 1.0];
        let mut whole = MaskedErrors::new();
        whole.update(&pred, &target, &mask);
        let mut a = MaskedErrors::new();
        a.update(&pred[..2], &target[..2], &mask[..2]);
        let mut b = MaskedErrors::new();
        b.update(&pred[2..], &target[2..], &mask[2..]);
        a.merge(&b);
        assert_eq!(whole.mae(), a.mae());
        assert_eq!(whole.mse(), a.mse());
        assert_eq!(whole.count(), a.count());
    }

    #[test]
    fn rmse_is_sqrt_mse() {
        let pred = [3.0f32, -1.0];
        let target = [0.0f32, 0.0];
        let mask = [1.0f32, 1.0];
        let mse = masked_mse(&pred, &target, &mask);
        assert!((masked_rmse(&pred, &target, &mask) - mse.sqrt()).abs() < 1e-12);
    }
}
