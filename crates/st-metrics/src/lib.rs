//! # st-metrics
//!
//! Evaluation metrics for spatiotemporal imputation, matching the paper's
//! Section IV-C: masked MAE / MSE / RMSE on deterministic imputations, and
//! the Continuous Ranked Probability Score (CRPS, Eqs. 10–12) on sample
//! ensembles, discretised at 19 quantile levels with 0.05 ticks exactly as
//! in CSDI and PriSTI.

#![warn(missing_docs)]
// Index-based loops over several parallel buffers are the clearest way to
// write the numeric kernels in this workspace.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod crps;
pub mod masked;

pub use crps::{crps_ensemble, crps_single, quantile_of_sorted};
pub use masked::{masked_mae, masked_mse, masked_rmse, MaskedErrors};
