//! Missing-rate sensitivity at example scale (mirrors paper Fig. 5): train
//! PriSTI once, then watch how its imputation MAE stays nearly flat as the
//! test data gets sparser, while linear interpolation degrades steeply —
//! the *shape* of the paper's Fig. 5. (At example-scale training the
//! absolute MAE of the small diffusion model still trails Lin-ITP; the
//! bench harness `fig5` runs the full comparison.)
//!
//! ```sh
//! cargo run --release --example missing_rate
//! ```

use pristi_core::train::{train, MaskStrategyKind, TrainConfig};
use pristi_core::{impute, ImputeOptions, PristiConfig, Sampler};
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_baselines::simple::LinearImputer;
use st_baselines::{evaluate_panel, visible, Imputer};
use st_data::dataset::Split;
use st_data::generators::{generate_traffic, TrafficConfig};
use st_data::missing::inject_point_missing;

fn main() {
    let base = generate_traffic(&TrafficConfig {
        n_nodes: 12,
        n_days: 4,
        ..TrafficConfig::metr_la()
    });

    // Train once with the point strategy (random re-masking covers all rates).
    let mut cfg = PristiConfig::small();
    cfg.d_model = 16;
    cfg.heads = 4;
    cfg.virtual_nodes = 8;
    let tc = TrainConfig {
        epochs: 30,
        lr: 2e-3,
        window_len: 24,
        window_stride: 6,
        strategy: MaskStrategyKind::Point,
        ..Default::default()
    };
    println!("training PriSTI once on the traffic panel...");
    let trained = train(&base, cfg, &tc).expect("training config is valid");

    println!("\nrate   PriSTI   Lin-ITP");
    for rate in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let mut data = base.clone();
        data.eval_mask = inject_point_missing(&data.observed_mask, rate, 100 + (rate * 100.0) as u64);

        // PriSTI: impute the test windows with the already-trained model.
        let (mut panel, mask) = visible(&data);
        let mut rng = StdRng::seed_from_u64(9);
        let (s, e) = data.split_range(Split::Test);
        let n = data.n_nodes();
        let mut t0 = s;
        while t0 + 24 <= e {
            let w = data.window_at(t0, 24);
            let res = impute(
                &trained,
                &w,
                &ImputeOptions { n_samples: 6, sampler: Sampler::Ddpm },
                &mut rng,
            )
            .expect("window shape matches the trained model");
            let med = res.median();
            for l in 0..24 {
                for i in 0..n {
                    let idx = (t0 + l) * n + i;
                    if mask.data()[idx] == 0.0 {
                        panel.data_mut()[idx] = med.at(&[i, l]);
                    }
                }
            }
            t0 += 24;
        }
        let pristi_mae = evaluate_panel(&data, &panel, Split::Test).mae();
        let lin_mae =
            evaluate_panel(&data, &LinearImputer.fit_impute(&data), Split::Test).mae();
        println!("{:>3.0}%   {pristi_mae:6.2}   {lin_mae:7.2}", rate * 100.0);
    }
}
