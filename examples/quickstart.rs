//! Quickstart: generate a small spatiotemporal panel, hide some values,
//! train PriSTI for a few epochs and impute the hidden values with
//! uncertainty. Runs in well under a minute on one CPU core.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use pristi_core::train::{train, MaskStrategyKind, TrainConfig};
use pristi_core::{impute, ImputeOptions, PristiConfig, Sampler};
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_data::dataset::Split;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::inject_point_missing;
use st_metrics::masked_mae;

fn main() {
    // 1. A synthetic air-quality panel: 12 stations, 12 days, hourly.
    // episode-free panel: smooth enough for a quickstart-sized training run
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 12,
        n_days: 12,
        seed: 42,
        episodes_per_week: 0.0,
        ..Default::default()
    });
    // Hide 25 % of the observed values as the evaluation target.
    data.eval_mask = inject_point_missing(&data.observed_mask, 0.25, 7);
    println!(
        "dataset: {} steps x {} stations, {:.1}% of observations hidden",
        data.n_steps(),
        data.n_nodes(),
        100.0 * st_data::missing::eval_rate(&data.observed_mask, &data.eval_mask)
    );

    // 2. Train a small PriSTI.
    let mut model_cfg = PristiConfig::small();
    model_cfg.d_model = 16;
    model_cfg.heads = 4;
    model_cfg.virtual_nodes = 8;
    let train_cfg = TrainConfig {
        epochs: 40,
        batch_size: 8,
        lr: 2e-3,
        window_len: 24,
        window_stride: 6,
        strategy: MaskStrategyKind::Point,
        ..Default::default()
    };
    println!("training PriSTI ({} diffusion steps)...", model_cfg.t_steps);
    let trained = train(&data, model_cfg, &train_cfg).expect("training config is valid");
    println!(
        "trained: {} parameters, final epoch loss {:.4}",
        trained.model.n_params(),
        trained.epoch_losses.last().unwrap()
    );

    // 3. Impute a test window with a 10-sample ensemble.
    let window = &data.windows(Split::Test, 24, 24)[0];
    let mut rng = StdRng::seed_from_u64(1);
    let result = impute(
        &trained,
        window,
        &ImputeOptions { n_samples: 10, sampler: Sampler::Ddpm },
        &mut rng,
    )
    .expect("window shape matches the trained model");
    let median = result.median();
    let q05 = result.quantile(0.05);
    let q95 = result.quantile(0.95);

    let mae = masked_mae(median.data(), window.values.data(), window.eval.data());
    println!("\nimputation MAE on hidden values of the first test window: {mae:.2}");

    // 4. Show a few imputed points with their uncertainty bands.
    println!("\n   station  hour   truth  median   [q05, q95]");
    let mut shown = 0;
    'outer: for i in 0..window.n_nodes() {
        for t in 0..window.len() {
            if window.eval.at(&[i, t]) > 0.0 {
                println!(
                    "   {:>7}  {:>4}  {:>6.1}  {:>6.1}   [{:.1}, {:.1}]",
                    i,
                    t,
                    window.values.at(&[i, t]),
                    median.at(&[i, t]),
                    q05.at(&[i, t]),
                    q95.at(&[i, t])
                );
                shown += 1;
                if shown >= 8 {
                    break 'outer;
                }
            }
        }
    }
}
