//! Air-quality scenario: the paper's two hardest AQI-36 use-cases at example
//! scale — (a) imputing bursty *simulated sensor failures*, and (b) virtual
//! kriging: reconstructing a station that never reports, purely from its
//! neighbours and the geography (paper Fig. 7).
//!
//! ```sh
//! cargo run --release --example air_quality
//! ```

use pristi_core::train::{train, MaskStrategyKind, TrainConfig};
use pristi_core::{impute, ImputeOptions, PristiConfig, Sampler};
use st_rand::StdRng;
use st_rand::SeedableRng;
use st_data::dataset::Split;
use st_data::generators::{generate_air_quality, AirQualityConfig};
use st_data::missing::{inject_simulated_failure, mask_entire_sensors};
use st_metrics::{masked_mae, MaskedErrors};

fn main() {
    let mut data = generate_air_quality(&AirQualityConfig {
        n_nodes: 16,
        n_days: 12,
        seed: 11,
        ..Default::default()
    });

    // (a) simulated failure: bursty outages on ~20% of observations,
    //     plus (b) one station that never reports at all.
    let failing_station = data.graph.least_connected();
    let failures = inject_simulated_failure(&data.observed_mask, 0.20, 18.0, 3);
    let kriged = mask_entire_sensors(&data.observed_mask, &[failing_station]);
    data.eval_mask = failures.zip_map(&kriged, |a, b| if a > 0.0 || b > 0.0 { 1.0 } else { 0.0 });
    println!(
        "AQI-like panel: {} stations x {} hours; station {failing_station} fully dark",
        data.n_nodes(),
        data.n_steps()
    );

    let mut cfg = PristiConfig::small();
    cfg.d_model = 16;
    cfg.heads = 4;
    cfg.virtual_nodes = 8;
    let tc = TrainConfig {
        epochs: 15,
        window_len: 24,
        window_stride: 12,
        strategy: MaskStrategyKind::HybridHistorical,
        ..Default::default()
    };
    println!("training PriSTI with the hybrid+historical mask strategy...");
    let trained = train(&data, cfg, &tc).expect("training config is valid");

    // Evaluate over the test split: separately for ordinary failures and for
    // the fully-dark station (the kriging case).
    let mut rng = StdRng::seed_from_u64(2);
    let mut burst_err = MaskedErrors::new();
    let mut dark_err = MaskedErrors::new();
    for w in data.windows(Split::Test, 24, 24) {
        let res = impute(
            &trained,
            &w,
            &ImputeOptions { n_samples: 8, sampler: Sampler::Ddpm },
            &mut rng,
        )
        .expect("window shape matches the trained model");
        let med = res.median();
        for i in 0..w.n_nodes() {
            for t in 0..w.len() {
                if w.eval.at(&[i, t]) > 0.0 {
                    let (p, v) = (med.at(&[i, t]), w.values.at(&[i, t]));
                    if i == failing_station {
                        dark_err.update(&[p], &[v], &[1.0]);
                    } else {
                        burst_err.update(&[p], &[v], &[1.0]);
                    }
                }
            }
        }
    }
    println!("\nMAE on bursty sensor failures: {:.2}", burst_err.mae());
    println!(
        "MAE on the fully-dark station {failing_station} (kriging from geography): {:.2}",
        dark_err.mae()
    );

    // Reference point: how far off is simply copying the station's nearest
    // neighbour?
    let nn = data.graph.nearest_neighbors(failing_station, 1)[0];
    let n = data.n_nodes();
    let (s, e) = data.split_range(Split::Test);
    let copied: Vec<f32> = (s..e).map(|t| data.values.data()[t * n + nn]).collect();
    let truth: Vec<f32> = (s..e).map(|t| data.values.data()[t * n + failing_station]).collect();
    let naive = masked_mae(&copied, &truth, &vec![1.0; truth.len()]);
    println!("(copying nearest neighbour {nn} verbatim would give MAE {naive:.2})");
}
