//! Traffic scenario: block missing on a METR-LA-like highway panel, PriSTI
//! imputation against classical baselines, then the paper's downstream task
//! at example scale — forecasting on the imputed panel (Table V flow).
//!
//! ```sh
//! cargo run --release --example traffic
//! ```

use pristi_core::train::{train, MaskStrategyKind, TrainConfig};
use pristi_core::PristiConfig;
use st_baselines::simple::{LinearImputer, MeanImputer};
use st_baselines::{evaluate_panel, visible, Imputer};
use st_data::dataset::Split;
use st_data::generators::{generate_traffic, TrafficConfig};
use st_data::missing::inject_block_missing;
use st_forecast::{evaluate_forecaster, train_forecaster, ForecastConfig};

fn main() {
    let mut data = generate_traffic(&TrafficConfig {
        n_nodes: 16,
        n_days: 4,
        ..TrafficConfig::metr_la()
    });
    data.eval_mask = inject_block_missing(&data.observed_mask, 0.05, 0.0015, 12, 48, 5);
    println!(
        "traffic panel: {} sensors x {} five-minute steps, block-missing injected",
        data.n_nodes(),
        data.n_steps()
    );

    // Classical baselines.
    for imp in [&mut MeanImputer as &mut dyn Imputer, &mut LinearImputer] {
        let panel = imp.fit_impute(&data);
        let err = evaluate_panel(&data, &panel, Split::Test);
        println!("{:8} MAE {:.2} (mph)", imp.name(), err.mae());
    }

    // PriSTI with the paper's hybrid(point+block) training strategy.
    let mut cfg = PristiConfig::small();
    cfg.d_model = 16;
    cfg.heads = 4;
    cfg.virtual_nodes = 8;
    let tc = TrainConfig {
        epochs: 12,
        window_len: 24,
        window_stride: 12,
        strategy: MaskStrategyKind::HybridBlock,
        ..Default::default()
    };
    println!("training PriSTI...");
    let trained = train(&data, cfg, &tc).expect("training config is valid");

    // Impute the whole panel (downstream task consumes every split).
    let (mut panel, mask) = visible(&data);
    let mut rng = <st_rand::StdRng as st_rand::SeedableRng>::seed_from_u64(3);
    let n = data.n_nodes();
    let len = 24;
    let mut t0 = 0;
    while t0 + len <= data.n_steps() {
        let w = data.window_at(t0, len);
        let res = pristi_core::impute(
            &trained,
            &w,
            &pristi_core::ImputeOptions { n_samples: 6, sampler: pristi_core::Sampler::Ddpm },
            &mut rng,
        )
        .expect("window shape matches the trained model");
        let med = res.median();
        for l in 0..len {
            for i in 0..n {
                let idx = (t0 + l) * n + i;
                if mask.data()[idx] == 0.0 {
                    panel.data_mut()[idx] = med.at(&[i, l]);
                }
            }
        }
        t0 += len;
    }
    let err = evaluate_panel(&data, &panel, Split::Test);
    println!("PriSTI   MAE {:.2} (mph)", err.mae());

    // Downstream: 12-step-ahead forecasting on the imputed panel.
    println!("\ntraining a Graph-WaveNet-style forecaster on the imputed panel...");
    let fc = ForecastConfig { epochs: 10, d_model: 12, blocks: 2, ..Default::default() };
    let model = train_forecaster(&panel, &data.graph, fc);
    let (mae, rmse) = evaluate_forecaster(&model, &panel, &data.values);
    println!("12-step forecast on imputed data: MAE {mae:.2}, RMSE {rmse:.2}");

    // Compare with forecasting on the zero-filled (unimputed) panel.
    let (raw, _) = visible(&data);
    let fc2 = ForecastConfig { epochs: 10, d_model: 12, blocks: 2, ..Default::default() };
    let model_raw = train_forecaster(&raw, &data.graph, fc2);
    let (mae_raw, rmse_raw) = evaluate_forecaster(&model_raw, &raw, &data.values);
    println!("12-step forecast on raw (zero-filled) data: MAE {mae_raw:.2}, RMSE {rmse_raw:.2}");
}
