#!/usr/bin/env bash
# Tier-1 verification for the hermetic workspace.
#
# Every dependency is an in-repo path crate, so the whole build/test cycle
# must succeed with --offline and no crates.io registry access. Run from
# anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== docs drift lint (scripts/check_docs.sh) =="
./scripts/check_docs.sh

echo "== cargo tree: dependency graph must be path-local =="
if cargo tree --offline --workspace --prefix none | grep -vE '^\[|^$' | grep -qv '(/'; then
    echo "error: found a non-path dependency in the workspace tree" >&2
    cargo tree --offline --workspace --prefix none | grep -vE '^\[|^$' | grep -v '(/' >&2
    exit 1
fi

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test -q (offline) =="
cargo test -q --offline

echo "== cargo test -q --workspace (offline, ST_PAR_THREADS=1) =="
ST_PAR_THREADS=1 cargo test -q --workspace --offline

echo "== cargo test -q --workspace (offline, ST_PAR_THREADS=4) =="
ST_PAR_THREADS=4 cargo test -q --workspace --offline

# Forced-scalar leg: ST_SIMD=0 pins the dispatch to the scalar tier, so the
# goldens and both equivalence suites prove the SIMD paths change no bits.
echo "== cargo test -q --workspace (offline, ST_SIMD=0 scalar tier) =="
ST_SIMD=0 cargo test -q --workspace --offline

echo "== cargo clippy --all-targets (offline, deny warnings) =="
cargo clippy --all-targets --offline -- -D warnings

echo "== cargo doc --no-deps (offline, deny rustdoc warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --offline --quiet

echo "== quick micro-bench with JSON report =="
cargo bench -p pristi-bench --bench micro --offline -- --quick --json
test -s BENCH_micro.json || { echo "error: BENCH_micro.json missing or empty" >&2; exit 1; }

echo "== thread-scaling + prior-cache entries present in BENCH_micro.json =="
for entry in \
    pristi_eps_theta_forward_4x24x24_t1 \
    pristi_eps_theta_forward_4x24x24_t2 \
    pristi_eps_theta_forward_4x24x24_tmax \
    attention_forward_backward_8x24x32_t1 \
    attention_forward_backward_8x24x32_t2 \
    attention_forward_backward_8x24x32_tmax \
    quantile_cached_32x36x24 \
    quantile_resort_32x36x24 \
    serve_serial_4req_x2samples \
    serve_batched_4req_x2samples \
    p_sample_step_cached_8x36x24 \
    p_sample_step_uncached_8x36x24 \
    impute_cached_4req_x2samples \
    impute_uncached_4req_x2samples \
    impute_ddim_4req_x2samples \
    impute_pndm_4req_x2samples \
    impute_refine_4req_x2samples \
    stream_tick_amortized_16t \
    stream_tick_recompute_16t; do
    grep -q "\"$entry\"" BENCH_micro.json \
        || { echo "error: BENCH_micro.json missing bench entry $entry" >&2; exit 1; }
done

# Streaming amortization gate: the session's per-tick cost over the 16-tick
# feed must be >= 2x cheaper than a full-window recompute every tick.
STREAM_NS="$(sed -nE 's/.*"stream_tick_amortized_16t","ns_per_iter":([0-9]+).*/\1/p' BENCH_micro.json)"
RECOMPUTE_NS="$(sed -nE 's/.*"stream_tick_recompute_16t","ns_per_iter":([0-9]+).*/\1/p' BENCH_micro.json)"
[ -n "$STREAM_NS" ] && [ -n "$RECOMPUTE_NS" ] \
    || { echo "error: could not extract stream_tick ns_per_iter values" >&2; exit 1; }
awk -v s="$STREAM_NS" -v r="$RECOMPUTE_NS" 'BEGIN { exit !(r >= 2.0 * s) }' \
    || { echo "error: streaming amortization below 2x (stream $STREAM_NS ns vs recompute $RECOMPUTE_NS ns)" >&2; exit 1; }
echo "stream bench: amortized $STREAM_NS ns vs recompute $RECOMPUTE_NS ns (>= 2x)"

echo "== checkpoint round-trip + serve smoke (offline CLI) =="
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
PRISTI=target/release/pristi
"$PRISTI" generate --kind aqi --out "$SMOKE_DIR/panel.csv" --coords-out "$SMOKE_DIR/coords.csv"
"$PRISTI" checkpoint save --data "$SMOKE_DIR/panel.csv" --coords "$SMOKE_DIR/coords.csv" \
    --out "$SMOKE_DIR/model.ckpt" --epochs 1 --window 12 2>/dev/null
"$PRISTI" checkpoint load-verify --ckpt "$SMOKE_DIR/model.ckpt"

# Three JSONL requests (36 sensors x 12 steps, nulls = cells to impute) must
# come back as three well-formed, ok:true response lines.
N_CELLS=36
ROW='[1.0,2.0,null,4.0,5.0,null,7.0,8.0,9.0,null,11.0,12.0]'
ROWS="$ROW"
for _ in $(seq 2 "$N_CELLS"); do ROWS="$ROWS,$ROW"; done
for id in 1 2 3; do
    echo "{\"id\":$id,\"values\":[$ROWS],\"n_samples\":2,\"ddim_steps\":4}"
done > "$SMOKE_DIR/requests.jsonl"
# One request per new solver family via the "sampler" spec field.
echo "{\"id\":4,\"values\":[$ROWS],\"n_samples\":2,\"sampler\":\"pndm:3\"}" >> "$SMOKE_DIR/requests.jsonl"
echo "{\"id\":5,\"values\":[$ROWS],\"n_samples\":2,\"sampler\":\"refine:3\"}" >> "$SMOKE_DIR/requests.jsonl"
"$PRISTI" serve --ckpt "$SMOKE_DIR/model.ckpt" \
    < "$SMOKE_DIR/requests.jsonl" > "$SMOKE_DIR/responses.jsonl" 2>/dev/null
[ "$(wc -l < "$SMOKE_DIR/responses.jsonl")" -eq 5 ] \
    || { echo "error: serve smoke expected 5 response lines" >&2; exit 1; }
for id in 1 2 3 4 5; do
    grep -q "^{\"id\":$id,\"ok\":true,\"median\":\[\[" "$SMOKE_DIR/responses.jsonl" \
        || { echo "error: serve smoke missing ok response for id $id" >&2; exit 1; }
done
echo "serve smoke: 5 requests -> 5 well-formed responses"

echo "== multi-worker serve smoke (--workers 4, same requests) =="
"$PRISTI" serve --ckpt "$SMOKE_DIR/model.ckpt" --workers 4 \
    < "$SMOKE_DIR/requests.jsonl" > "$SMOKE_DIR/responses_w4.jsonl" 2>/dev/null
# Worker-count invariance at the CLI level: byte-identical responses.
sort "$SMOKE_DIR/responses.jsonl" > "$SMOKE_DIR/responses.sorted"
sort "$SMOKE_DIR/responses_w4.jsonl" > "$SMOKE_DIR/responses_w4.sorted"
cmp -s "$SMOKE_DIR/responses.sorted" "$SMOKE_DIR/responses_w4.sorted" \
    || { echo "error: --workers 4 responses diverge from --workers 1" >&2; exit 1; }
echo "serve smoke: --workers 4 responses byte-identical to --workers 1"

echo "== streaming serve smoke (--stream, 12-tick JSONL, bitwise replay) =="
# 12 ticks over the 36-sensor model: a null opens a gap on ticks 1 and 7,
# every 4th tick is fully observed. Replaying the log must reproduce the
# response bytes exactly, and --workers 4 must not change a byte either.
: > "$SMOKE_DIR/ticks.jsonl"
for t in $(seq 1 12); do
    CELLS="$t.5"
    for i in $(seq 2 "$N_CELLS"); do
        if { [ "$t" -eq 1 ] || [ "$t" -eq 7 ]; } && [ "$i" -eq 3 ]; then
            CELLS="$CELLS,null"
        else
            CELLS="$CELLS,$i.$t"
        fi
    done
    echo "{\"id\":$t,\"tick\":[$CELLS]}" >> "$SMOKE_DIR/ticks.jsonl"
done
echo '{"id":13,"reimpute":true}' >> "$SMOKE_DIR/ticks.jsonl"
"$PRISTI" serve --stream --ckpt "$SMOKE_DIR/model.ckpt" --samples 2 \
    < "$SMOKE_DIR/ticks.jsonl" > "$SMOKE_DIR/stream_a.jsonl" 2>/dev/null
"$PRISTI" serve --stream --ckpt "$SMOKE_DIR/model.ckpt" --samples 2 \
    < "$SMOKE_DIR/ticks.jsonl" > "$SMOKE_DIR/stream_b.jsonl" 2>/dev/null
cmp -s "$SMOKE_DIR/stream_a.jsonl" "$SMOKE_DIR/stream_b.jsonl" \
    || { echo "error: stream replay responses are not byte-identical" >&2; exit 1; }
"$PRISTI" serve --stream --ckpt "$SMOKE_DIR/model.ckpt" --samples 2 --workers 4 \
    < "$SMOKE_DIR/ticks.jsonl" > "$SMOKE_DIR/stream_w4.jsonl" 2>/dev/null
cmp -s "$SMOKE_DIR/stream_a.jsonl" "$SMOKE_DIR/stream_w4.jsonl" \
    || { echo "error: stream --workers 4 responses diverge from --workers 1" >&2; exit 1; }
[ "$(wc -l < "$SMOKE_DIR/stream_a.jsonl")" -eq 13 ] \
    || { echo "error: stream smoke expected 13 response lines" >&2; exit 1; }
grep -q '"ok":false' "$SMOKE_DIR/stream_a.jsonl" \
    && { echo "error: stream smoke produced an error response" >&2; exit 1; }
grep -q '"imputed":true' "$SMOKE_DIR/stream_a.jsonl" \
    || { echo "error: stream smoke never imputed" >&2; exit 1; }
grep -q '"imputed":false' "$SMOKE_DIR/stream_a.jsonl" \
    || { echo "error: stream smoke never skipped a gap-free tick" >&2; exit 1; }
grep -q '"watermark":' "$SMOKE_DIR/stream_a.jsonl" \
    || { echo "error: stream responses missing the settled watermark" >&2; exit 1; }
echo "stream smoke: 13 ticks, replay + --workers 4 byte-identical"

echo "== loadtest: schema, entries, and seeded determinism =="
"$PRISTI" loadtest --quick --stream --seed 7 --out "$SMOKE_DIR/serve_a.json" 2>/dev/null
grep -q '"schema":"st-serve-bench/1"' "$SMOKE_DIR/serve_a.json" \
    || { echo "error: BENCH_serve report missing st-serve-bench/1 schema" >&2; exit 1; }
for entry in closed_loop_w1 closed_loop_w4 mixed_solver_w1 mixed_solver_w4 shed_storm timeout_storm stream_w1 stream_w4; do
    grep -q "\"name\":\"$entry\"" "$SMOKE_DIR/serve_a.json" \
        || { echo "error: BENCH_serve report missing entry $entry" >&2; exit 1; }
done
for key in p50_ms p99_ms p999_ms rps shed timeout checksum; do
    grep -q "\"$key\":" "$SMOKE_DIR/serve_a.json" \
        || { echo "error: BENCH_serve report missing key $key" >&2; exit 1; }
done
# Same seed -> byte-identical report once per-entry "timing":{...} objects
# (the only run-varying fields) are blanked.
"$PRISTI" loadtest --quick --stream --seed 7 --out "$SMOKE_DIR/serve_b.json" 2>/dev/null
sed -E 's/"timing":\{[^}]*\}/"timing":{}/g' "$SMOKE_DIR/serve_a.json" > "$SMOKE_DIR/serve_a.stripped"
sed -E 's/"timing":\{[^}]*\}/"timing":{}/g' "$SMOKE_DIR/serve_b.json" > "$SMOKE_DIR/serve_b.stripped"
cmp -s "$SMOKE_DIR/serve_a.stripped" "$SMOKE_DIR/serve_b.stripped" \
    || { echo "error: same-seed loadtest reports differ after timing strip" >&2; exit 1; }
echo "loadtest: same-seed reports byte-identical modulo timing"

echo "== pristi profile: determinism + leaf attribution gate =="
"$PRISTI" profile --quick --out "$SMOKE_DIR/profile_a.json" \
    --folded "$SMOKE_DIR/folded_a.txt" >/dev/null
"$PRISTI" profile --quick --out "$SMOKE_DIR/profile_b.json" \
    --folded "$SMOKE_DIR/folded_b.txt" >/dev/null
grep -q '"schema": *"st-profile/1"' "$SMOKE_DIR/profile_a.json" \
    || { echo "error: PROFILE report missing st-profile/1 schema" >&2; exit 1; }
sed -E 's/"timing":\{[^}]*\}/"timing":{}/g' "$SMOKE_DIR/profile_a.json" > "$SMOKE_DIR/profile_a.stripped"
sed -E 's/"timing":\{[^}]*\}/"timing":{}/g' "$SMOKE_DIR/profile_b.json" > "$SMOKE_DIR/profile_b.stripped"
cmp -s "$SMOKE_DIR/profile_a.stripped" "$SMOKE_DIR/profile_b.stripped" \
    || { echo "error: profile reports differ after timing strip" >&2; exit 1; }
# >= 95% of root wall time must be attributed to leaf spans.
LEAF_PCT="$(sed -nE 's/.*"leaf_pct": *([0-9]+(\.[0-9]+)?).*/\1/p' "$SMOKE_DIR/profile_a.json")"
[ -n "$LEAF_PCT" ] || { echo "error: PROFILE report missing leaf_pct" >&2; exit 1; }
awk -v p="$LEAF_PCT" 'BEGIN { exit !(p >= 95.0) }' \
    || { echo "error: leaf attribution $LEAF_PCT% below the 95% gate" >&2; exit 1; }
echo "profile: stripped reports byte-identical, leaf attribution ${LEAF_PCT}%"

echo "== steps-vs-CRPS sweep (quick): few-step accuracy gate =="
# pndm:6 / refine:4 must stay within the pinned CRPS/MAE tolerances of the
# 50-step DDIM reference (the CLI exits nonzero on a violation).
"$PRISTI" bench --sweep --quick --out "$SMOKE_DIR/steps_vs_crps.csv" >/dev/null
grep -q '^pndm:6,' "$SMOKE_DIR/steps_vs_crps.csv" \
    || { echo "error: sweep CSV missing the pndm:6 row" >&2; exit 1; }
grep -q '^refine:4,' "$SMOKE_DIR/steps_vs_crps.csv" \
    || { echo "error: sweep CSV missing the refine:4 row" >&2; exit 1; }
echo "sweep: quick gate passes, CSV rows present"

echo "== per-solver impute micro-bench entries run standalone =="
"$PRISTI" bench --filter impute_ > "$SMOKE_DIR/impute_bench.txt"
[ "$(grep -c 'ns/iter' "$SMOKE_DIR/impute_bench.txt")" -eq 5 ] \
    || { echo "error: bench --filter impute_ expected 5 entries" >&2; exit 1; }
echo "bench filter: all 5 impute entries timed"

echo "== pristi bench --compare: regression gate =="
# Fresh quick run vs the committed baseline must pass (generous threshold:
# quick-run noise on this VM is +/-10-30%, see EXPERIMENTS.md).
"$PRISTI" bench --compare results/BENCH_micro_baseline.json,BENCH_micro.json \
    --threshold-pct 150 \
    || { echo "error: bench compare against committed baseline failed" >&2; exit 1; }
# The detector itself must fire: the committed fixture pair injects a 10x
# regression, so compare must exit nonzero even at a 100% threshold.
if "$PRISTI" bench --compare \
    results/bench_compare_fixture_old.json,results/bench_compare_fixture_new.json \
    --threshold-pct 100 >/dev/null; then
    echo "error: bench compare passed the injected-regression fixture" >&2
    exit 1
fi
echo "bench compare: baseline gate passes, injected regression detected"

echo "verify: OK"
