#!/usr/bin/env bash
# Tier-1 verification for the hermetic workspace.
#
# Every dependency is an in-repo path crate, so the whole build/test cycle
# must succeed with --offline and no crates.io registry access. Run from
# anywhere; exits non-zero on the first failure.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo tree: dependency graph must be path-local =="
if cargo tree --offline --workspace --prefix none | grep -vE '^\[|^$' | grep -qv '(/'; then
    echo "error: found a non-path dependency in the workspace tree" >&2
    cargo tree --offline --workspace --prefix none | grep -vE '^\[|^$' | grep -v '(/' >&2
    exit 1
fi

echo "== cargo build --release (offline) =="
cargo build --release --offline

echo "== cargo test -q (offline) =="
cargo test -q --offline

echo "== cargo test -q --workspace (offline, ST_PAR_THREADS=1) =="
ST_PAR_THREADS=1 cargo test -q --workspace --offline

echo "== cargo test -q --workspace (offline, ST_PAR_THREADS=4) =="
ST_PAR_THREADS=4 cargo test -q --workspace --offline

echo "== cargo clippy --all-targets (offline, deny warnings) =="
cargo clippy --all-targets --offline -- -D warnings

echo "== quick micro-bench with JSON report =="
cargo bench -p pristi-bench --bench micro --offline -- --quick --json
test -s BENCH_micro.json || { echo "error: BENCH_micro.json missing or empty" >&2; exit 1; }

echo "== thread-scaling entries present in BENCH_micro.json =="
for entry in \
    pristi_eps_theta_forward_4x24x24_t1 \
    pristi_eps_theta_forward_4x24x24_t2 \
    pristi_eps_theta_forward_4x24x24_tmax \
    attention_forward_backward_8x24x32_t1 \
    attention_forward_backward_8x24x32_t2 \
    attention_forward_backward_8x24x32_tmax; do
    grep -q "\"$entry\"" BENCH_micro.json \
        || { echo "error: BENCH_micro.json missing scaling entry $entry" >&2; exit 1; }
done

echo "verify: OK"
