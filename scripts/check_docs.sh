#!/usr/bin/env bash
# Docs drift lint: keeps DESIGN.md, README.md, and the CLI surface in
# lockstep. Pure grep/sed over committed files — no build required — so it
# runs first in scripts/verify.sh and cheaply in any pre-commit hook.
#
# Checks:
#   1. DESIGN.md `## N.` sections are numbered consecutively from 1.
#   2. Every `DESIGN.md §N` cross-reference in the prose docs points at a
#      section that exists.
#   3. The README documentation map links every top-level doc.
#   4. Every `pristi` CLI subcommand dispatched in src/bin/pristi.rs is
#      mentioned in README.md, and vice versa for the flags the README
#      showcases (`--stream`, `--workers`, `--sampler`).
set -euo pipefail
cd "$(dirname "$0")/.."
fail=0

# -- 1: DESIGN.md section numbering ------------------------------------------
expected=1
while read -r num; do
    if [ "$num" -ne "$expected" ]; then
        echo "check_docs: DESIGN.md numbering broken: expected '## $expected.', found '## $num.'" >&2
        fail=1
        expected=$((num + 1))
    else
        expected=$((expected + 1))
    fi
done < <(sed -nE 's/^## ([0-9]+)\..*/\1/p' DESIGN.md)
max_section=$((expected - 1))
[ "$max_section" -ge 1 ] || { echo "check_docs: DESIGN.md has no numbered sections" >&2; fail=1; }

# -- 2: §N cross-references resolve ------------------------------------------
while read -r ref; do
    if [ "$ref" -lt 1 ] || [ "$ref" -gt "$max_section" ]; then
        echo "check_docs: dangling reference 'DESIGN.md §$ref' (sections run 1..$max_section)" >&2
        fail=1
    fi
done < <(grep -ohE 'DESIGN\.md §[0-9]+' README.md EXPERIMENTS.md ROADMAP.md results/README.md \
         | grep -oE '[0-9]+' | sort -un)

# -- 3: README documentation map ---------------------------------------------
for doc in DESIGN.md EXPERIMENTS.md ROADMAP.md results/README.md; do
    grep -q "]($doc)" README.md \
        || { echo "check_docs: README documentation map missing a link to $doc" >&2; fail=1; }
done

# -- 4: CLI subcommands documented -------------------------------------------
# Top-level dispatch arms in src/bin/pristi.rs look like `Some("impute") =>`;
# nested arms (checkpoint save/load-verify) are covered by the parent name.
while read -r cmd; do
    case "$cmd" in save|load-verify|interactive|best_effort) continue ;; esac
    grep -q -- "pristi -- $cmd\|pristi $cmd\|\`$cmd\`" README.md \
        || grep -q -- "-- $cmd " README.md \
        || { echo "check_docs: README never shows CLI subcommand '$cmd'" >&2; fail=1; }
done < <(sed -nE 's/^ *Some\("([a-z-]+)"\) =>.*/\1/p' src/bin/pristi.rs | sort -u)

# Flags the README documents must still exist in the CLI sources.
for flag in --stream --workers --sampler --quick; do
    grep -qr -- "\"${flag#--}\"" src/bin/ \
        || { echo "check_docs: README/CLI drift: flag '$flag' not found in src/bin/" >&2; fail=1; }
done

if [ "$fail" -ne 0 ]; then
    echo "check_docs: FAILED" >&2
    exit 1
fi
echo "check_docs: OK (DESIGN.md sections 1..$max_section, references and CLI surface in sync)"
